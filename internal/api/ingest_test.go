package api

// Tests for the batched ingest front door: both wire encodings, the
// skip-vs-fail error taxonomy, the sync flag, and the recovery stats
// surfaced through /api/stats.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vap/internal/core"
	"vap/internal/store"
)

// newIngestServer starts an httptest server over an empty store so tests
// create all state through the ingest endpoint itself.
func newIngestServer(t *testing.T, opts store.Options) (*httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(NewServer(core.NewAnalyzer(st), nil).Routes())
	t.Cleanup(srv.Close)
	return srv, st
}

func postIngest(t *testing.T, url, contentType string, body []byte) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode ingest response: %v", err)
	}
	return resp.StatusCode, out
}

func TestIngestNDJSON(t *testing.T) {
	srv, st := newIngestServer(t, store.Options{})
	body := strings.Join([]string{
		`{"meter":1,"lon":12.5,"lat":55.6,"zone":"residential"}`,
		`{"meter":2,"lon":12.6,"lat":55.7}`,
		`{"meter":1,"samples":[{"ts":60,"v":1.5},{"ts":120,"v":2.5},{"ts":180,"v":3.5}]}`,
		``, // blank lines are tolerated
		`{"meter":2,"ts":60,"v":9.25}`,
	}, "\n")
	code, out := postIngest(t, srv.URL+"/api/ingest", "application/x-ndjson", []byte(body))
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["meters"] != 2.0 || out["samples"] != 4.0 {
		t.Errorf("response = %v, want 2 meters / 4 samples", out)
	}
	smps, err := st.Range(1, 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(smps) != 3 || smps[2].Value != 3.5 {
		t.Errorf("meter 1 rows = %v", smps)
	}
	if n, _ := st.SeriesLen(2); n != 1 {
		t.Errorf("meter 2 has %d samples, want 1", n)
	}
}

func TestIngestSkipsOutOfOrderAndUnknown(t *testing.T) {
	srv, st := newIngestServer(t, store.Options{})
	body := strings.Join([]string{
		`{"meter":1,"lon":12.5,"lat":55.6}`,
		`{"meter":1,"samples":[{"ts":100,"v":1},{"ts":200,"v":2}]}`,
		`{"meter":1,"samples":[{"ts":150,"v":7},{"ts":160,"v":8}]}`, // replayed history: skipped, not failed
		`{"meter":999,"ts":100,"v":5}`,                              // unregistered meter
	}, "\n")
	code, out := postIngest(t, srv.URL+"/api/ingest", "application/x-ndjson", []byte(body))
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["samples"] != 2.0 || out["skipped_out_of_order"] != 2.0 || out["skipped_unknown_meter"] != 1.0 {
		t.Errorf("response = %v, want 2 accepted / 2 out-of-order / 1 unknown-meter", out)
	}
	if n, _ := st.SeriesLen(1); n != 2 {
		t.Errorf("meter 1 has %d samples, want 2", n)
	}
}

func TestIngestBinaryRoundTrip(t *testing.T) {
	srv, st := newIngestServer(t, store.Options{})
	var b []byte
	b = append(b, "VAPB"...)
	// 0x01: register meter 7.
	b = append(b, 0x01)
	b = binary.LittleEndian.AppendUint64(b, 7)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(12.5))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(55.6))
	b = binary.LittleEndian.AppendUint16(b, 10)
	b = append(b, "industrial"...)
	// 0x02: three samples.
	b = append(b, 0x02)
	b = binary.LittleEndian.AppendUint64(b, 7)
	b = binary.LittleEndian.AppendUint32(b, 3)
	for i, v := range []float64{1.25, math.NaN(), 3.75} {
		b = binary.LittleEndian.AppendUint64(b, uint64(60*(i+1)))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	code, out := postIngest(t, srv.URL+"/api/ingest", "application/octet-stream", b)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["meters"] != 1.0 || out["samples"] != 3.0 {
		t.Errorf("response = %v, want 1 meter / 3 samples", out)
	}
	smps, err := st.Range(7, 0, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if len(smps) != 3 || !math.IsNaN(smps[1].Value) || smps[2].Value != 3.75 {
		t.Errorf("meter 7 rows = %v", smps)
	}
	m, ok := st.Catalog().Get(7)
	if !ok || m.Zone != store.ZoneType("industrial") {
		t.Errorf("meter 7 catalog entry = %+v ok=%t", m, ok)
	}
}

func TestIngestSyncDurable(t *testing.T) {
	dir := t.TempDir()
	srv, _ := newIngestServer(t, store.Options{Dir: dir})
	body := `{"meter":1,"lon":1,"lat":2}` + "\n" + `{"meter":1,"ts":60,"v":4.5}`
	code, out := postIngest(t, srv.URL+"/api/ingest?sync=1", "application/x-ndjson", []byte(body))
	if code != http.StatusOK || out["synced"] != true {
		t.Fatalf("status %d, response %v", code, out)
	}
	// A synced 200 is a durability promise: a fresh open must see the data.
	st2, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if n, _ := st2.SeriesLen(1); n != 1 {
		t.Errorf("recovered %d samples after synced ingest, want 1", n)
	}
}

func TestIngestBadInput(t *testing.T) {
	srv, _ := newIngestServer(t, store.Options{})
	cases := []struct {
		name, contentType string
		body              string
		want              int
	}{
		{"malformedJSON", "application/x-ndjson", `{"meter":`, http.StatusBadRequest},
		{"missingMeter", "application/x-ndjson", `{"ts":60,"v":1}`, http.StatusBadRequest},
		{"lonWithoutLat", "application/x-ndjson", `{"meter":1,"lon":12.5}`, http.StatusBadRequest},
		{"tsWithoutValue", "application/x-ndjson", `{"meter":1,"ts":60}`, http.StatusBadRequest},
		{"emptyObject", "application/x-ndjson", `{"meter":1}`, http.StatusBadRequest},
		{"unknownFrame", "application/octet-stream", "VAPB\xff" + strings.Repeat("\x00", 8), http.StatusBadRequest},
		{"truncatedFrame", "application/octet-stream", "VAPB\x02\x01\x00\x00", http.StatusBadRequest},
		// A frame declaring more samples than the cap is a size violation
		// (413: split the batch), not a syntax error.
		{"hugeBatchCount", "application/octet-stream", "VAPB\x02" + strings.Repeat("\x00", 8) + "\xff\xff\xff\xff", http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := postIngest(t, srv.URL+"/api/ingest", tc.contentType, []byte(tc.body))
			if code != tc.want {
				t.Errorf("status %d (%v), want %d", code, out, tc.want)
			}
		})
	}

	resp, err := http.Get(srv.URL + "/api/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /api/ingest = %d, want 405", resp.StatusCode)
	}
}

func TestStatsReportsRecovery(t *testing.T) {
	dir := t.TempDir()
	{
		st, err := store.Open(store.Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.PutMeter(store.Meter{ID: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := st.AppendBatch(1, []store.Sample{{TS: 60, Value: 1}, {TS: 120, Value: 2}}); err != nil {
			t.Fatal(err)
		}
		if err := st.Snapshot(); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	srv, _ := newIngestServer(t, store.Options{Dir: dir})
	var stats struct {
		LastRecoveryMS *int64 `json:"last_recovery_ms"`
		Recovery       struct {
			SnapshotFormat string `json:"snapshot_format"`
			SnapshotMeters int    `json:"snapshot_meters"`
		} `json:"recovery"`
	}
	if code := getJSON(t, srv.URL+"/api/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.LastRecoveryMS == nil {
		t.Error("stats missing last_recovery_ms")
	}
	if stats.Recovery.SnapshotFormat != "v3" || stats.Recovery.SnapshotMeters != 1 {
		t.Errorf("stats recovery = %+v, want v3 snapshot with 1 meter", stats.Recovery)
	}
}

func BenchmarkIngestHTTP(b *testing.B) {
	st, err := store.Open(store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(NewServer(core.NewAnalyzer(st), nil).Routes())
	defer srv.Close()
	if err := st.PutMeter(store.Meter{ID: 1}); err != nil {
		b.Fatal(err)
	}
	const batch = 720
	b.Run("NDJSON", func(b *testing.B) {
		ts := int64(0)
		var sb strings.Builder
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sb.Reset()
			sb.WriteString(`{"meter":1,"samples":[`)
			for j := 0; j < batch; j++ {
				ts++
				if j > 0 {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, `{"ts":%d,"v":%g}`, ts, float64(j)*0.25)
			}
			sb.WriteString("]}\n")
			resp, err := http.Post(srv.URL+"/api/ingest", "application/x-ndjson", strings.NewReader(sb.String()))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		b.SetBytes(batch * 16)
	})
	b.Run("Binary", func(b *testing.B) {
		ts := int64(1 << 32) // above anything NDJSON wrote
		buf := make([]byte, 0, 4+13+batch*16)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = buf[:0]
			buf = append(buf, "VAPB"...)
			buf = append(buf, 0x02)
			buf = binary.LittleEndian.AppendUint64(buf, 1)
			buf = binary.LittleEndian.AppendUint32(buf, batch)
			for j := 0; j < batch; j++ {
				ts++
				buf = binary.LittleEndian.AppendUint64(buf, uint64(ts))
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(float64(j)*0.25))
			}
			resp, err := http.Post(srv.URL+"/api/ingest", "application/octet-stream", bytes.NewReader(buf))
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		b.SetBytes(batch * 16)
	})
}
