package api

import (
	"net/http"
	"time"
)

// ServerTimeouts configures the http.Server bounds vapd listens with. The
// seed built http.Server with none of these set, so a slowloris client
// trickling header bytes — or an ingest stream that stalls mid-body —
// pinned a goroutine and a connection forever. For each field, 0 selects
// the production default and a negative value disables the bound.
type ServerTimeouts struct {
	// ReadHeader bounds reading one request's headers — the slowloris
	// kill switch. Default 10s.
	ReadHeader time.Duration
	// Read bounds reading the entire request, body included. Generous by
	// default (15m) so a multi-gigabyte ingest replay over a slow link
	// still fits, while a stalled stream cannot hold its connection
	// forever.
	Read time.Duration
	// Write bounds writing the response. Default disabled (0): /api/stream
	// is a long-lived Server-Sent-Events response that a write deadline
	// would sever mid-subscription.
	Write time.Duration
	// Idle bounds keep-alive connections between requests. Default 2m.
	Idle time.Duration
}

func pickTimeout(v, def time.Duration) time.Duration {
	switch {
	case v < 0:
		return 0 // explicitly disabled
	case v == 0:
		return def
	default:
		return v
	}
}

// NewHTTPServer builds the hardened http.Server for addr and handler.
func NewHTTPServer(addr string, handler http.Handler, t ServerTimeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: pickTimeout(t.ReadHeader, 10*time.Second),
		ReadTimeout:       pickTimeout(t.Read, 15*time.Minute),
		WriteTimeout:      pickTimeout(t.Write, 0),
		IdleTimeout:       pickTimeout(t.Idle, 2*time.Minute),
	}
}
