package stream

import (
	"context"
	"math"
	"testing"
	"time"

	"vap/internal/geo"
	"vap/internal/kde"
	"vap/internal/store"
)

func box() geo.BBox {
	return geo.NewBBox(geo.Point{Lon: 12.4, Lat: 55.5}, geo.Point{Lon: 12.8, Lat: 55.9})
}

func TestHubSubscribePublish(t *testing.T) {
	h := NewHub()
	ch, cancel := h.Subscribe()
	defer cancel()
	if h.Subscribers() != 1 {
		t.Fatalf("subscribers = %d", h.Subscribers())
	}
	h.Publish(Event{Seq: 1, Count: 5})
	select {
	case e := <-ch:
		if e.Seq != 1 || e.Count != 5 {
			t.Fatalf("event = %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}
}

func TestHubLateSubscriberGetsLastEvent(t *testing.T) {
	h := NewHub()
	h.Publish(Event{Seq: 9})
	ch, cancel := h.Subscribe()
	defer cancel()
	select {
	case e := <-ch:
		if e.Seq != 9 {
			t.Fatalf("replayed event = %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("late subscriber got nothing")
	}
}

func TestHubUnsubscribeIdempotent(t *testing.T) {
	h := NewHub()
	_, cancel := h.Subscribe()
	cancel()
	cancel() // second call must not panic
	if h.Subscribers() != 0 {
		t.Fatalf("subscribers = %d", h.Subscribers())
	}
	h.Publish(Event{Seq: 1}) // publishing with no subscribers is fine
}

func TestHubSlowSubscriberDropsNotBlocks(t *testing.T) {
	h := NewHub()
	_, cancel := h.Subscribe() // never drained
	defer cancel()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			h.Publish(Event{Seq: int64(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("publish blocked on slow subscriber")
	}
}

func TestTrackerMatchesBatchKDE(t *testing.T) {
	// Feeding each meter's latest reading through the tracker must equal a
	// batch KDE over the same weighted points.
	tr, err := NewTracker(box(), 48, 48, 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	pts := []kde.WeightedPoint{
		{Loc: geo.Point{Lon: 12.5, Lat: 55.6}, Weight: 0.5},
		{Loc: geo.Point{Lon: 12.6, Lat: 55.7}, Weight: 1.0},
		{Loc: geo.Point{Lon: 12.7, Lat: 55.8}, Weight: 0.25},
	}
	for i, p := range pts {
		// Update twice with different weights: only the last must count.
		tr.Update(int64(i), kde.WeightedPoint{Loc: p.Loc, Weight: 99})
		tr.Update(int64(i), p)
	}
	snap, _ := tr.Snapshot()
	batch, err := kde.Estimate(pts, box(), kde.Config{Cols: 48, Rows: 48, Bandwidth: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	_, peak := batch.MinMax()
	for i := range snap.Values {
		if math.Abs(snap.Values[i]-batch.Values[i]) > 1e-6*peak {
			t.Fatalf("cell %d: tracker %v vs batch %v", i, snap.Values[i], batch.Values[i])
		}
	}
}

func TestTrackerErrors(t *testing.T) {
	if _, err := NewTracker(box(), 8, 8, 0, 3); err == nil {
		t.Error("zero bandwidth should fail")
	}
	if _, err := NewTracker(box(), 8, 8, 0.01, 0); err == nil {
		t.Error("zero population should fail")
	}
	if _, err := NewTracker(geo.EmptyBBox(), 8, 8, 0.01, 3); err == nil {
		t.Error("empty box should fail")
	}
}

func TestTrackerSnapshotIsCopy(t *testing.T) {
	tr, _ := NewTracker(box(), 8, 8, 0.05, 1)
	tr.Update(1, kde.WeightedPoint{Loc: geo.Point{Lon: 12.6, Lat: 55.7}, Weight: 1})
	snap1, _ := tr.Snapshot()
	tr.Update(1, kde.WeightedPoint{Loc: geo.Point{Lon: 12.5, Lat: 55.6}, Weight: 2})
	snap2, _ := tr.Snapshot()
	same := true
	for i := range snap1.Values {
		if snap1.Values[i] != snap2.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("snapshot aliases the live field")
	}
}

func makeFeeds(n, hours int) []Feed {
	feeds := make([]Feed, n)
	for i := range feeds {
		samples := make([]store.Sample, hours)
		for h := range samples {
			samples[h] = store.Sample{TS: int64(h) * 3600, Value: float64(i + 1)}
		}
		feeds[i] = Feed{
			MeterID: int64(i + 1),
			Loc:     geo.Point{Lon: 12.5 + float64(i)*0.01, Lat: 55.6},
			Samples: samples,
		}
	}
	return feeds
}

func TestReplayerFeedsStoreAndHub(t *testing.T) {
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	feeds := makeFeeds(3, 24)
	for _, f := range feeds {
		if err := st.PutMeter(store.Meter{ID: f.MeterID, Location: f.Loc, Zone: store.ZoneResidential}); err != nil {
			t.Fatal(err)
		}
	}
	tr, _ := NewTracker(box(), 16, 16, 0.02, 3)
	hub := NewHub()
	ch, cancel := hub.Subscribe()
	defer cancel()
	events := 0
	drained := make(chan struct{})
	go func() {
		for range ch {
			events++
		}
		close(drained)
	}()
	rp := &Replayer{St: st, Tracker: tr, Hub: hub, Interval: 0, Step: 3600}
	ticks, err := rp.Run(context.Background(), feeds, 0, 24*3600)
	if err != nil {
		t.Fatal(err)
	}
	if ticks != 24 {
		t.Fatalf("ticks = %d, want 24", ticks)
	}
	cancel()
	<-drained
	if events == 0 {
		t.Error("no hub events")
	}
	for _, f := range feeds {
		n, err := st.SeriesLen(f.MeterID)
		if err != nil || n != 24 {
			t.Fatalf("meter %d stored %d samples (%v)", f.MeterID, n, err)
		}
	}
}

func TestReplayerWindowRespected(t *testing.T) {
	feeds := makeFeeds(1, 48)
	tr, _ := NewTracker(box(), 8, 8, 0.05, 1)
	rp := &Replayer{Tracker: tr, Step: 3600}
	ticks, err := rp.Run(context.Background(), feeds, 10*3600, 20*3600)
	if err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
}

func TestReplayerCancellation(t *testing.T) {
	feeds := makeFeeds(1, 1000)
	rp := &Replayer{Interval: 50 * time.Millisecond, Step: 3600}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	_, err := rp.Run(ctx, feeds, 0, 1000*3600)
	if err == nil {
		t.Fatal("cancelled replayer should return an error")
	}
}

// TestReplayerStampsDataVersion asserts streamed events carry the
// two-level {global, fingerprint} stamp, advancing tick over tick.
func TestReplayerStampsDataVersion(t *testing.T) {
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	feeds := makeFeeds(2, 8)
	for _, f := range feeds {
		if err := st.PutMeter(store.Meter{ID: f.MeterID, Location: f.Loc, Zone: store.ZoneResidential}); err != nil {
			t.Fatal(err)
		}
	}
	hub := NewHub()
	ch, cancel := hub.Subscribe()
	defer cancel()
	var versions []DataVersion
	drained := make(chan struct{})
	go func() {
		for e := range ch {
			versions = append(versions, e.DataVersion)
		}
		close(drained)
	}()
	rp := &Replayer{St: st, Hub: hub, Step: 3600}
	if _, err := rp.Run(context.Background(), feeds, 0, 8*3600); err != nil {
		t.Fatal(err)
	}
	cancel()
	<-drained
	if len(versions) == 0 {
		t.Fatal("no events")
	}
	for i, v := range versions {
		if v.Global == 0 || v.Fingerprint == 0 {
			t.Fatalf("event %d: zero version stamp %+v", i, v)
		}
		if i > 0 {
			prev := versions[i-1]
			if v.Global <= prev.Global {
				t.Fatalf("global not advancing: %d -> %d", prev.Global, v.Global)
			}
			if v.Fingerprint == prev.Fingerprint {
				t.Fatalf("fingerprint unchanged across ingest tick %d", i)
			}
		}
	}
}
