// Package stream implements demo scenario S2 step 3: "if the data are fed
// to the system in a short time interval, e.g., every 10 seconds, we can
// observe the changes of patterns in near real time." A Replayer feeds
// stored or generated readings into the store in wall-clock ticks, an
// incremental density tracker maintains the current KDE map online, and a
// Hub fans state updates out to subscribers (the SSE endpoint).
package stream

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"vap/internal/geo"
	"vap/internal/kde"
	"vap/internal/store"
)

// DataVersion is the two-level data version stamped on events: the
// store-wide mutation counter plus the O(shards) global fingerprint over
// per-shard versions. Either field changing means something mutated; the
// per-selection staleness check is the store's Fingerprint over the
// selection's meters, which the exec-layer cache keys embed.
type DataVersion struct {
	Global      uint64 `json:"global"`
	Fingerprint uint64 `json:"fingerprint"`
}

// Event kinds: the SSE event name subscribers filter on.
const (
	// KindIngest is a replayed ingest batch carrying the updated density
	// state. (Wire name "density" — the event the UI's live map listens
	// to since the first streaming release.)
	KindIngest = "density"
	// KindSnapshot announces a completed durability snapshot: the store
	// persisted its state and retired the covered WAL segments.
	KindSnapshot = "snapshot"
)

// Event is one hub broadcast: an ingest batch that became visible at Seq,
// or a durability snapshot announcement.
type Event struct {
	// Kind discriminates the event (KindIngest, KindSnapshot); empty is
	// KindIngest for wire compatibility with pre-snapshot-event payloads.
	Kind     string         `json:"kind,omitempty"`
	Seq      int64          `json:"seq"`
	DataTime int64          `json:"data_time"` // timestamp of the replayed slice
	Count    int            `json:"count"`     // readings in the batch
	Snapshot *kde.Field     `json:"-"`         // current density map
	Summary  DensitySummary `json:"summary"`
	// WALSegments/WALBytes report the live log footprint after a snapshot
	// retired its covered segments (KindSnapshot only).
	WALSegments int   `json:"wal_segments,omitempty"`
	WALBytes    int64 `json:"wal_bytes,omitempty"`
	// DataVersion is the store's data version after this batch landed.
	// Subscribers holding results keyed to an older version (the exec
	// layer's cache keys) know those are stale the moment they see a
	// larger Global here.
	DataVersion DataVersion `json:"data_version,omitzero"`
}

// DensitySummary is the scalar state pushed to subscribers.
type DensitySummary struct {
	MaxDensity float64   `json:"max_density"`
	HotCell    geo.Point `json:"hot_cell"` // center of the densest cell
	Total      float64   `json:"total"`
}

// Hub broadcasts events to any number of subscribers. Slow subscribers
// drop events rather than blocking the replayer.
type Hub struct {
	mu     sync.Mutex
	subs   map[chan Event]struct{}
	last   Event
	has    bool
	closed bool
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{subs: make(map[chan Event]struct{})} }

// Subscribe returns a channel of events and an unsubscribe function. The
// most recent event (if any) is delivered immediately.
func (h *Hub) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 16)
	h.mu.Lock()
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	if h.has {
		ch <- h.last
	}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
		h.mu.Unlock()
	}
}

// Close shuts the hub down for server drain: every subscriber channel
// closes (so blocked SSE handlers return and the HTTP server can finish
// draining), later Subscribe calls get an already-closed channel, and
// Publish becomes a no-op. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}

// Publish fans an event out; full subscriber buffers drop it.
func (h *Hub) Publish(e Event) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.last = e
	h.has = true
	for ch := range h.subs {
		select {
		case ch <- e:
		default: // drop for slow consumer
		}
	}
	h.mu.Unlock()
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Tracker maintains an online KDE of the most recent reading per meter,
// updated incrementally: replacing one meter's weight only touches the
// kernel footprint of that meter, not the whole map.
type Tracker struct {
	mu     sync.Mutex
	field  *kde.Field
	h      float64
	points map[int64]kde.WeightedPoint // last contribution per meter
	n      int                         // population size used for 1/n scaling
}

// NewTracker builds a tracker over box with the given grid and bandwidth.
// n is the (fixed) population size in the 1/n normalization of Eq. 3.
func NewTracker(box geo.BBox, cols, rows int, bandwidth float64, n int) (*Tracker, error) {
	if bandwidth <= 0 {
		return nil, errors.New("stream: bandwidth must be positive")
	}
	if n <= 0 {
		return nil, errors.New("stream: population size must be positive")
	}
	if box.IsEmpty() {
		return nil, errors.New("stream: empty box")
	}
	if cols <= 0 {
		cols = 64
	}
	if rows <= 0 {
		rows = 64
	}
	return &Tracker{
		field: &kde.Field{
			Box: box, Cols: cols, Rows: rows,
			Values:    make([]float64, cols*rows),
			Bandwidth: bandwidth, Kernel: kde.KernelGaussian,
		},
		h:      bandwidth,
		points: make(map[int64]kde.WeightedPoint),
		n:      n,
	}, nil
}

// Update replaces the contribution of meterID with a new weighted location.
func (t *Tracker) Update(meterID int64, p kde.WeightedPoint) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.points[meterID]; ok {
		t.apply(old, -1)
	}
	t.points[meterID] = p
	t.apply(p, +1)
}

// apply adds sign * the kernel footprint of p to the field.
func (t *Tracker) apply(p kde.WeightedPoint, sign float64) {
	f := t.field
	if p.Weight == 0 {
		return
	}
	cellW := (f.Box.Max.Lon - f.Box.Min.Lon) / float64(f.Cols)
	cellH := (f.Box.Max.Lat - f.Box.Min.Lat) / float64(f.Rows)
	// Same 5-bandwidth truncation as the batch KDE so online and batch
	// fields agree to ~1e-5 of the peak.
	support := 5 * t.h
	c0 := clampInt(int((p.Loc.Lon-support-f.Box.Min.Lon)/cellW), 0, f.Cols-1)
	c1 := clampInt(int((p.Loc.Lon+support-f.Box.Min.Lon)/cellW), 0, f.Cols-1)
	r0 := clampInt(int((p.Loc.Lat-support-f.Box.Min.Lat)/cellH), 0, f.Rows-1)
	r1 := clampInt(int((p.Loc.Lat+support-f.Box.Min.Lat)/cellH), 0, f.Rows-1)
	inv := sign * p.Weight / (float64(t.n) * t.h * t.h)
	for r := r0; r <= r1; r++ {
		cy := f.Box.Min.Lat + (float64(r)+0.5)*cellH
		dy := (cy - p.Loc.Lat) / t.h
		for c := c0; c <= c1; c++ {
			cx := f.Box.Min.Lon + (float64(c)+0.5)*cellW
			dx := (cx - p.Loc.Lon) / t.h
			f.Values[r*f.Cols+c] += inv * gauss2(dx*dx+dy*dy)
		}
	}
}

func gauss2(u2 float64) float64 {
	const inv2pi = 0.15915494309189535
	return inv2pi * math.Exp(-u2/2)
}

// Snapshot returns a copy of the current field and its summary.
func (t *Tracker) Snapshot() (*kde.Field, DensitySummary) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f := t.field
	cp := &kde.Field{
		Box: f.Box, Cols: f.Cols, Rows: f.Rows,
		Values:    append([]float64(nil), f.Values...),
		Bandwidth: f.Bandwidth, Kernel: f.Kernel,
	}
	var sum DensitySummary
	bestIdx := 0
	for i, v := range f.Values {
		sum.Total += v
		if v > sum.MaxDensity {
			sum.MaxDensity = v
			bestIdx = i
		}
	}
	sum.HotCell = f.CellCenter(bestIdx%f.Cols, bestIdx/f.Cols)
	return cp, sum
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Replayer feeds a dataset's readings into a store and tracker in
// data-time order at a configurable wall-clock interval.
type Replayer struct {
	St       *store.Store
	Tracker  *Tracker
	Hub      *Hub
	Interval time.Duration // wall-clock tick (the demo's "every 10 seconds")
	Step     int64         // data seconds advanced per tick (e.g. 3600)
}

// Feed is one meter's reading slice the replayer serves from.
type Feed struct {
	MeterID int64
	Loc     geo.Point
	Samples []store.Sample
}

// Run replays feeds until the context is cancelled or data runs out.
// Readings are appended to the store (if St is non-nil), pushed into the
// tracker, and a Hub event is published per tick. Returns ticks executed.
func (r *Replayer) Run(ctx context.Context, feeds []Feed, from, to int64) (int, error) {
	if r.Step <= 0 {
		r.Step = 3600
	}
	pos := make([]int, len(feeds))
	// Skip to the window start.
	for i, f := range feeds {
		for pos[i] < len(f.Samples) && f.Samples[pos[i]].TS < from {
			pos[i]++
		}
	}
	var ticker *time.Ticker
	if r.Interval > 0 {
		ticker = time.NewTicker(r.Interval)
		defer ticker.Stop()
	}
	ticks := 0
	var seq int64
	for cur := from; cur < to; cur += r.Step {
		if err := ctx.Err(); err != nil {
			return ticks, err
		}
		batch := 0
		var lastTS int64
		for i := range feeds {
			f := &feeds[i]
			for pos[i] < len(f.Samples) && f.Samples[pos[i]].TS < cur+r.Step {
				smp := f.Samples[pos[i]]
				pos[i]++
				batch++
				lastTS = smp.TS
				if r.St != nil {
					if err := r.St.Append(f.MeterID, smp); err != nil && err != store.ErrOutOfOrder {
						return ticks, err
					}
				}
				if r.Tracker != nil {
					r.Tracker.Update(f.MeterID, kde.WeightedPoint{Loc: f.Loc, Weight: smp.Value})
				}
			}
		}
		seq++
		ticks++
		if r.Hub != nil {
			var snap *kde.Field
			var sum DensitySummary
			if r.Tracker != nil {
				snap, sum = r.Tracker.Snapshot()
			}
			var ver DataVersion
			if r.St != nil {
				ver = DataVersion{Global: r.St.Version(), Fingerprint: r.St.GlobalFingerprint()}
			}
			r.Hub.Publish(Event{Kind: KindIngest, Seq: seq, DataTime: lastTS, Count: batch, Snapshot: snap, Summary: sum, DataVersion: ver})
		}
		if ticker != nil {
			select {
			case <-ctx.Done():
				return ticks, ctx.Err()
			case <-ticker.C:
			}
		}
	}
	return ticks, nil
}
