// Package mat implements the small dense linear-algebra kernel VAP's
// analytics need: a row-major dense matrix, symmetric eigendecomposition via
// the cyclic Jacobi method, power iteration with deflation, and the
// double-centering operator used by classical MDS.
//
// The package is deliberately minimal — it is not a general BLAS — but every
// routine is exact (no approximations beyond float64) and tested against
// closed-form cases.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewDense returns a zeroed Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a Dense from a slice of equal-length rows.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			return nil, fmt.Errorf("mat: ragged input: row %d has %d cols, want %d", i, len(r), c)
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m * b.
func (m *Dense) Mul(b *Dense) (*Dense, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("mat: dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewDense(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out, nil
}

// MulVec returns m * v.
func (m *Dense) MulVec(v []float64) ([]float64, error) {
	if m.Cols != len(v) {
		return nil, fmt.Errorf("mat: dimension mismatch %dx%d * vec(%d)", m.Rows, m.Cols, len(v))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Scale multiplies every element in place by s.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Add adds b element-wise in place; dimensions must match.
func (m *Dense) Add(b *Dense) error {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return errors.New("mat: dimension mismatch in Add")
	}
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
	return nil
}

// IsSymmetric reports whether the matrix is square and symmetric to tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// DoubleCenter applies the centering operator B = -1/2 * J * D2 * J where
// J = I - (1/n) 11^T, to a squared-distance matrix D2, in place, returning
// the Gram matrix used by classical MDS.
func DoubleCenter(d2 *Dense) (*Dense, error) {
	n := d2.Rows
	if n != d2.Cols {
		return nil, errors.New("mat: DoubleCenter requires a square matrix")
	}
	rowMean := make([]float64, n)
	colMean := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := d2.At(i, j)
			rowMean[i] += v
			colMean[j] += v
			total += v
		}
	}
	fn := float64(n)
	for i := range rowMean {
		rowMean[i] /= fn
	}
	for j := range colMean {
		colMean[j] /= fn
	}
	total /= fn * fn
	out := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, -0.5*(d2.At(i, j)-rowMean[i]-colMean[j]+total))
		}
	}
	return out, nil
}

// Eigen holds an eigendecomposition of a symmetric matrix: Values sorted in
// descending order and Vectors with the i-th eigenvector in column i.
type Eigen struct {
	Values  []float64
	Vectors *Dense // n x n, column i pairs with Values[i]
}

// SymEigen computes the full eigendecomposition of symmetric matrix a using
// the cyclic Jacobi rotation method. The input is not modified.
func SymEigen(a *Dense) (*Eigen, error) {
	n := a.Rows
	if n != a.Cols {
		return nil, errors.New("mat: SymEigen requires a square matrix")
	}
	if !a.IsSymmetric(1e-8 * (1 + maxAbs(a))) {
		return nil, errors.New("mat: SymEigen requires a symmetric matrix")
	}
	w := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < 1e-12*(1+maxAbs(w)) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort descending by eigenvalue, permuting vector columns to match.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if vals[order[j]] > vals[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sortedVals := make([]float64, n)
	vecs := NewDense(n, n)
	for k, idx := range order {
		sortedVals[k] = vals[idx]
		for r := 0; r < n; r++ {
			vecs.Set(r, k, v.At(r, idx))
		}
	}
	return &Eigen{Values: sortedVals, Vectors: vecs}, nil
}

// rotate applies a Jacobi rotation with cos c, sin s on rows/cols p, q of w,
// accumulating the rotation into v.
func rotate(w, v *Dense, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip := w.At(i, p)
		wiq := w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj := w.At(p, j)
		wqj := w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Dense) float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

func maxAbs(m *Dense) float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Identity returns the n x n identity.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// PowerIteration estimates the dominant eigenpair of symmetric matrix a
// starting from x0 (a nonzero vector; pass nil for a default). It returns
// the eigenvalue, the unit eigenvector, and the number of iterations used.
func PowerIteration(a *Dense, x0 []float64, maxIter int, tol float64) (float64, []float64, int, error) {
	n := a.Rows
	if n != a.Cols {
		return 0, nil, 0, errors.New("mat: PowerIteration requires a square matrix")
	}
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	} else {
		for i := range x {
			// Deterministic quasi-random start avoids orthogonal-start stalls.
			x[i] = 1 + 0.001*float64(i%7)
		}
	}
	normalize(x)
	lambda := 0.0
	for it := 1; it <= maxIter; it++ {
		y, err := a.MulVec(x)
		if err != nil {
			return 0, nil, it, err
		}
		newLambda := dot(x, y)
		ny := norm(y)
		if ny == 0 {
			return 0, x, it, nil // a x = 0: eigenvalue 0
		}
		for i := range y {
			y[i] /= ny
		}
		diff := 0.0
		for i := range y {
			d := y[i] - x[i]
			// The sign of the eigenvector is arbitrary; track the closer sign.
			d2 := y[i] + x[i]
			if math.Abs(d2) < math.Abs(d) {
				d = d2
			}
			diff += d * d
		}
		copy(x, y)
		lambda = newLambda
		if math.Sqrt(diff) < tol {
			return lambda, x, it, nil
		}
	}
	return lambda, x, maxIter, nil
}

// TopEigen computes the k largest-magnitude eigenpairs of symmetric a using
// power iteration with Hotelling deflation. It is faster than a full Jacobi
// sweep when k << n, which is the MDS case (k = 2).
func TopEigen(a *Dense, k, maxIter int, tol float64) ([]float64, *Dense, error) {
	n := a.Rows
	if k > n {
		k = n
	}
	work := a.Clone()
	vals := make([]float64, 0, k)
	vecs := NewDense(n, k)
	for c := 0; c < k; c++ {
		lambda, vec, _, err := PowerIteration(work, nil, maxIter, tol)
		if err != nil {
			return nil, nil, err
		}
		vals = append(vals, lambda)
		for i := 0; i < n; i++ {
			vecs.Set(i, c, vec[i])
		}
		// Deflate: work -= lambda * v v^T
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				work.Set(i, j, work.At(i, j)-lambda*vec[i]*vec[j])
			}
		}
	}
	return vals, vecs, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func normalize(a []float64) {
	n := norm(a)
	if n == 0 {
		return
	}
	for i := range a {
		a[i] /= n
	}
}
