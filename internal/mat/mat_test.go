package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Errorf("Set failed")
	}
	if got := m.Row(1); got[0] != 4 || got[2] != 6 {
		t.Errorf("Row(1) = %v", got)
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged input should fail")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
	if _, err := a.Mul(NewDense(3, 3)); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Errorf("MulVec = %v", v)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestTranspose(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T dims = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 0) != 1 {
		t.Errorf("T values wrong")
	}
}

func TestScaleAdd(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b := a.Clone()
	a.Scale(2)
	if a.At(1, 1) != 8 {
		t.Errorf("Scale: %v", a.At(1, 1))
	}
	if err := a.Add(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 3 {
		t.Errorf("Add: %v", a.At(0, 0))
	}
	if err := a.Add(NewDense(1, 1)); err == nil {
		t.Error("Add mismatch should fail")
	}
}

func TestIsSymmetric(t *testing.T) {
	s, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	a, _ := FromRows([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(0.5) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if NewDense(2, 3).IsSymmetric(0) {
		t.Error("non-square cannot be symmetric")
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if !almostEq(eig.Values[i], w, 1e-10) {
			t.Errorf("eigenvalue[%d] = %v, want %v", i, eig.Values[i], w)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(eig.Values[0], 3, 1e-10) || !almostEq(eig.Values[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v", eig.Values)
	}
	// Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
	v0 := []float64{eig.Vectors.At(0, 0), eig.Vectors.At(1, 0)}
	if !almostEq(math.Abs(v0[0]), 1/math.Sqrt2, 1e-8) || !almostEq(v0[0], v0[1], 1e-8) {
		t.Errorf("dominant eigenvector = %v", v0)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 8
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	eig, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	// Check A v_k = lambda_k v_k for every k.
	for k := 0; k < n; k++ {
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = eig.Vectors.At(i, k)
		}
		av, _ := a.MulVec(v)
		for i := 0; i < n; i++ {
			if !almostEq(av[i], eig.Values[k]*v[i], 1e-7) {
				t.Fatalf("A v != lambda v at k=%d i=%d: %v vs %v", k, i, av[i], eig.Values[k]*v[i])
			}
		}
	}
	// Eigenvalues sorted descending.
	for k := 1; k < n; k++ {
		if eig.Values[k] > eig.Values[k-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", eig.Values)
		}
	}
}

func TestSymEigenRejects(t *testing.T) {
	if _, err := SymEigen(NewDense(2, 3)); err == nil {
		t.Error("non-square should fail")
	}
	a, _ := FromRows([][]float64{{1, 5}, {0, 1}})
	if _, err := SymEigen(a); err == nil {
		t.Error("asymmetric should fail")
	}
}

func TestDoubleCenterKnown(t *testing.T) {
	// Points on a line at 0, 1, 3: squared distances known; the centered
	// Gram matrix must have zero row/col sums.
	d2, _ := FromRows([][]float64{
		{0, 1, 9},
		{1, 0, 4},
		{9, 4, 0},
	})
	b, err := DoubleCenter(d2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rowSum, colSum := 0.0, 0.0
		for j := 0; j < 3; j++ {
			rowSum += b.At(i, j)
			colSum += b.At(j, i)
		}
		if !almostEq(rowSum, 0, 1e-12) || !almostEq(colSum, 0, 1e-12) {
			t.Fatalf("row/col %d sums = %v / %v, want 0", i, rowSum, colSum)
		}
	}
	// B must be symmetric and PSD here (points are Euclidean).
	if !b.IsSymmetric(1e-12) {
		t.Fatal("centered matrix not symmetric")
	}
	eig, err := SymEigen(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range eig.Values {
		if v < -1e-9 {
			t.Fatalf("negative eigenvalue %v for Euclidean distances", v)
		}
	}
	// Gram eigenvalues of collinear points: one positive, rest ~0.
	if eig.Values[0] <= 0 || !almostEq(eig.Values[1], 0, 1e-9) {
		t.Fatalf("eigenvalues = %v, want one positive, rest 0", eig.Values)
	}
}

func TestDoubleCenterRejectsNonSquare(t *testing.T) {
	if _, err := DoubleCenter(NewDense(2, 3)); err == nil {
		t.Error("non-square should fail")
	}
}

func TestPowerIteration(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 1}, {1, 3}})
	lambda, v, iters, err := PowerIteration(a, nil, 500, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Dominant eigenvalue = (7 + sqrt(5)) / 2 ≈ 4.618
	want := (7 + math.Sqrt(5)) / 2
	if !almostEq(lambda, want, 1e-6) {
		t.Errorf("lambda = %v, want %v (in %d iters)", lambda, want, iters)
	}
	if !almostEq(norm(v), 1, 1e-9) {
		t.Errorf("eigenvector not unit: %v", norm(v))
	}
}

func TestTopEigenMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 12
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	// Make it PSD (A^T A) so power iteration has a clean dominant pair.
	psd, _ := a.T().Mul(a)
	full, err := SymEigen(psd)
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := TopEigen(psd, 2, 2000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 2; k++ {
		if !almostEq(vals[k], full.Values[k], 1e-5*(1+math.Abs(full.Values[k]))) {
			t.Errorf("TopEigen[%d] = %v, Jacobi %v", k, vals[k], full.Values[k])
		}
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("identity[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(rng.Int31n(6))
		a := NewDense(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		prod, err := a.Mul(Identity(n))
		if err != nil {
			return false
		}
		for i := range a.Data {
			if !almostEq(prod.Data[i], a.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
