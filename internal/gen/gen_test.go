package gen

import (
	"math"
	"testing"
	"time"

	"vap/internal/store"
)

func smallConfig(days int) Config {
	return Config{
		Seed: 7,
		Days: days,
		Counts: map[Pattern]int{
			PatternBimodal:      10,
			PatternEnergySaving: 10,
			PatternIdle:         10,
			PatternConstantHigh: 10,
			PatternSuspicious:   10,
			PatternEarlyBird:    10,
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallConfig(7))
	b := Generate(smallConfig(7))
	if len(a.Customers) != len(b.Customers) {
		t.Fatal("nondeterministic customer count")
	}
	for i := range a.Customers {
		if a.Customers[i].Meter.Location != b.Customers[i].Meter.Location {
			t.Fatalf("nondeterministic location at %d", i)
		}
		if len(a.Readings[i]) != len(b.Readings[i]) {
			t.Fatalf("nondeterministic reading count at %d", i)
		}
		for j := range a.Readings[i] {
			if a.Readings[i][j] != b.Readings[i][j] {
				t.Fatalf("nondeterministic reading at %d/%d", i, j)
			}
		}
	}
}

func TestGenerateShape(t *testing.T) {
	ds := Generate(smallConfig(7))
	if len(ds.Customers) != 60 {
		t.Fatalf("customers = %d", len(ds.Customers))
	}
	if ds.Hours != 7*24 {
		t.Fatalf("hours = %d", ds.Hours)
	}
	for i, r := range ds.Readings {
		if len(r) != ds.Hours {
			t.Fatalf("customer %d has %d readings, want %d", i, len(r), ds.Hours)
		}
		// Hourly cadence, strictly increasing, non-negative values.
		for j := 1; j < len(r); j++ {
			if r[j].TS-r[j-1].TS != 3600 {
				t.Fatalf("customer %d cadence broken at %d", i, j)
			}
		}
		for j, s := range r {
			if s.Value < 0 || math.IsNaN(s.Value) {
				t.Fatalf("customer %d reading %d = %v", i, j, s.Value)
			}
		}
	}
}

func TestGenerateUniqueIDsAndValidLocations(t *testing.T) {
	ds := Generate(smallConfig(3))
	seen := map[int64]bool{}
	for _, c := range ds.Customers {
		if seen[c.Meter.ID] {
			t.Fatalf("duplicate meter id %d", c.Meter.ID)
		}
		seen[c.Meter.ID] = true
		if !c.Meter.Location.Valid() {
			t.Fatalf("invalid location %v", c.Meter.Location)
		}
	}
}

func TestGenerateMissingRate(t *testing.T) {
	cfg := smallConfig(10)
	cfg.MissingRate = 0.1
	ds := Generate(cfg)
	total, expected := 0, 0
	for _, r := range ds.Readings {
		total += len(r)
		expected += ds.Hours
	}
	frac := 1 - float64(total)/float64(expected)
	if frac < 0.05 || frac > 0.15 {
		t.Errorf("missing fraction = %.3f, want ~0.1", frac)
	}
}

func TestGenerateAnomalyRate(t *testing.T) {
	cfg := smallConfig(10)
	cfg.AnomalyRate = 0.05
	ds := Generate(cfg)
	spikes := 0
	total := 0
	for _, r := range ds.Readings {
		for _, s := range r {
			total++
			if s.Value > 20 {
				spikes++
			}
		}
	}
	frac := float64(spikes) / float64(total)
	if frac < 0.02 {
		t.Errorf("anomaly fraction = %.4f, want >= 0.02", frac)
	}
}

func TestPatternLevels(t *testing.T) {
	ds := Generate(smallConfig(14))
	means := map[Pattern]float64{}
	counts := map[Pattern]int{}
	for i, c := range ds.Customers {
		s := 0.0
		for _, r := range ds.Readings[i] {
			s += r.Value
		}
		means[c.Pattern] += s / float64(len(ds.Readings[i]))
		counts[c.Pattern]++
	}
	for p := range means {
		means[p] /= float64(counts[p])
	}
	if means[PatternIdle] >= 0.15 {
		t.Errorf("idle mean = %v, want < 0.15", means[PatternIdle])
	}
	if means[PatternConstantHigh] <= 2 {
		t.Errorf("constant-high mean = %v, want > 2", means[PatternConstantHigh])
	}
	if means[PatternEnergySaving] >= means[PatternBimodal] {
		t.Errorf("energy-saving (%v) should consume less than bimodal (%v)",
			means[PatternEnergySaving], means[PatternBimodal])
	}
}

func TestEarlyBirdPeakHour(t *testing.T) {
	ds := Generate(smallConfig(28))
	for i, c := range ds.Customers {
		if c.Pattern != PatternEarlyBird {
			continue
		}
		prof := DailyProfile(ds.Readings[i])
		peak := 0
		for h, v := range prof {
			if v > prof[peak] {
				peak = h
			}
		}
		if peak < 5 || peak > 7 {
			t.Errorf("early bird %d peaks at %02d:00, want 05-07", c.Meter.ID, peak)
		}
	}
}

func TestBimodalSeasonality(t *testing.T) {
	cfg := smallConfig(365)
	cfg.Counts = map[Pattern]int{PatternBimodal: 5}
	ds := Generate(cfg)
	for i := range ds.Customers {
		mp := MonthlyProfile(ds.Readings[i])
		jan, apr, jul, oct := mp[0], mp[3], mp[6], mp[9]
		if jan <= apr || jul <= apr {
			t.Errorf("customer %d: winter %v / summer %v not above spring %v",
				i, jan, jul, apr)
		}
		if jan <= oct || jul <= oct {
			t.Errorf("customer %d: winter %v / summer %v not above autumn %v",
				i, jan, jul, oct)
		}
	}
}

func TestConstantHighIsFlat(t *testing.T) {
	cfg := smallConfig(30)
	cfg.Counts = map[Pattern]int{PatternConstantHigh: 5}
	ds := Generate(cfg)
	for i := range ds.Customers {
		prof := DailyProfile(ds.Readings[i])
		lo, hi := prof[0], prof[0]
		for _, v := range prof {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if (hi-lo)/hi > 0.3 {
			t.Errorf("constant-high customer %d varies %.0f%% over the day", i, 100*(hi-lo)/hi)
		}
	}
}

func TestZonePlacement(t *testing.T) {
	ds := Generate(smallConfig(2))
	zones := map[store.ZoneType]int{}
	for _, c := range ds.Customers {
		zones[c.Meter.Zone]++
		// Constant-high must be commercial or industrial.
		if c.Pattern == PatternConstantHigh &&
			c.Meter.Zone != store.ZoneCommercial && c.Meter.Zone != store.ZoneIndustrial {
			t.Errorf("constant-high customer in zone %s", c.Meter.Zone)
		}
		// Household patterns are residential.
		if c.Pattern == PatternBimodal && c.Meter.Zone != store.ZoneResidential {
			t.Errorf("bimodal customer in zone %s", c.Meter.Zone)
		}
	}
	if zones[store.ZoneResidential] == 0 || zones[store.ZoneCommercial] == 0 {
		t.Errorf("zones not populated: %v", zones)
	}
}

func TestCommercialResidentialDiurnalShift(t *testing.T) {
	// The planted S2 structure: commercial demand share is higher at 13:00
	// than at 20:00; residential the other way around.
	ds := Generate(smallConfig(14))
	var com13, com20, res13, res20 float64
	for i, c := range ds.Customers {
		prof := DailyProfile(ds.Readings[i])
		switch c.Meter.Zone {
		case store.ZoneCommercial:
			com13 += prof[13]
			com20 += prof[20]
		case store.ZoneResidential:
			res13 += prof[13]
			res20 += prof[20]
		}
	}
	if com13 <= com20 {
		t.Errorf("commercial 13h (%v) should exceed 20h (%v)", com13, com20)
	}
	if res20 <= res13 {
		t.Errorf("residential 20h (%v) should exceed 13h (%v)", res20, res13)
	}
}

func TestLoadInto(t *testing.T) {
	ds := Generate(smallConfig(2))
	st, err := store.Open(store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := ds.LoadInto(st); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Meters != 60 || stats.Samples != 60*48 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestLabelsAndCustomerByID(t *testing.T) {
	ds := Generate(smallConfig(1))
	labels := ds.Labels()
	if len(labels) != len(ds.Customers) {
		t.Fatal("labels length mismatch")
	}
	c, ok := ds.CustomerByID(ds.Customers[3].Meter.ID)
	if !ok || c.Meter.ID != ds.Customers[3].Meter.ID {
		t.Fatal("CustomerByID failed")
	}
	if _, ok := ds.CustomerByID(-1); ok {
		t.Fatal("missing ID should fail")
	}
}

func TestDefaultsApplied(t *testing.T) {
	ds := Generate(Config{Seed: 1, Days: 1})
	if len(ds.Customers) != 460 { // default mix total
		t.Errorf("default population = %d, want 460", len(ds.Customers))
	}
	if ds.Start != time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC) {
		t.Errorf("default start = %v", ds.Start)
	}
}

func TestPatternString(t *testing.T) {
	names := map[Pattern]string{
		PatternBimodal:      "bimodal",
		PatternEnergySaving: "energy-saving",
		PatternIdle:         "idle",
		PatternConstantHigh: "constant-high",
		PatternSuspicious:   "suspicious",
		PatternEarlyBird:    "early-bird",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if Pattern(99).String() == "" {
		t.Error("unknown pattern should still stringify")
	}
}
