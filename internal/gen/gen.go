// Package gen synthesizes the smart-meter data set VAP is demonstrated on.
// The paper uses a proprietary real-world electricity data set; following
// its own reference [9] (the authors' synthetic residential-consumption
// generator), this package plants the exact structure the demo discovers:
//
//   - the five typical consumption patterns of Figure 3 — bimodal
//     (winter + summer peaks), energy-saving, idle, constant high, and
//     suspicious — plus the "early birds" morning-peak cohort queried in
//     demo scenario S1;
//   - a spatial layout with a commercial core and residential districts
//     whose demand peaks at different hours, producing the
//     commercial→residential evening demand shift of Figure 2/S2;
//   - configurable noise, anomalies, and missing readings so the
//     preprocessing stage has real work to do.
//
// All generation is deterministic given a seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"vap/internal/geo"
	"vap/internal/store"
)

// Pattern identifies a planted typical consumption pattern.
type Pattern int

// The planted patterns. EarlyBird is the S1 query cohort; the first five
// are the Figure 3 patterns.
const (
	PatternBimodal Pattern = iota
	PatternEnergySaving
	PatternIdle
	PatternConstantHigh
	PatternSuspicious
	PatternEarlyBird
	numPatterns
)

// NumPatterns is the count of distinct planted patterns.
const NumPatterns = int(numPatterns)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case PatternBimodal:
		return "bimodal"
	case PatternEnergySaving:
		return "energy-saving"
	case PatternIdle:
		return "idle"
	case PatternConstantHigh:
		return "constant-high"
	case PatternSuspicious:
		return "suspicious"
	case PatternEarlyBird:
		return "early-bird"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Customer is one synthetic meter with its ground truth.
type Customer struct {
	Meter   store.Meter
	Pattern Pattern
}

// Config controls the synthetic population.
type Config struct {
	Seed int64
	// Counts per pattern; zero entries use the default mix.
	Counts map[Pattern]int
	// Start of the observation window; zero means 2018-01-01 UTC.
	Start time.Time
	// Days of data at hourly cadence.
	Days int
	// Center of the synthetic city; zero value uses Copenhagen-ish
	// coordinates (the paper's case study is Danish).
	Center geo.Point
	// AnomalyRate is the fraction of samples replaced by spikes (meter
	// faults); MissingRate is the fraction of samples dropped.
	AnomalyRate float64
	MissingRate float64
}

func (c *Config) defaults() {
	if c.Counts == nil {
		c.Counts = map[Pattern]int{
			PatternBimodal:      120,
			PatternEnergySaving: 100,
			PatternIdle:         60,
			PatternConstantHigh: 80,
			PatternSuspicious:   40,
			PatternEarlyBird:    60,
		}
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.Days <= 0 {
		c.Days = 365
	}
	if c.Center == (geo.Point{}) {
		c.Center = geo.Point{Lon: 12.568, Lat: 55.676}
	}
}

// Dataset is the generated population plus its readings.
type Dataset struct {
	Customers []Customer
	// Readings[i] parallels Customers[i]; hourly cadence.
	Readings [][]store.Sample
	Start    time.Time
	Hours    int
	// Center is the synthetic city's commercial core (the generator's
	// configured center), the reference point for shift-direction checks.
	Center geo.Point
}

// Labels returns the ground-truth pattern index per customer.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Customers))
	for i, c := range d.Customers {
		out[i] = int(c.Pattern)
	}
	return out
}

// Generate builds the full synthetic dataset.
func Generate(cfg Config) *Dataset {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	hours := cfg.Days * 24
	ds := &Dataset{Start: cfg.Start, Hours: hours, Center: cfg.Center}
	id := int64(1)
	for p := Pattern(0); p < numPatterns; p++ {
		n := cfg.Counts[p]
		for k := 0; k < n; k++ {
			loc, zone := placeCustomer(rng, cfg.Center, p)
			cust := Customer{
				Meter: store.Meter{
					ID:       id,
					Location: loc,
					Zone:     zone,
					Labels:   map[string]string{"pattern": p.String()},
				},
				Pattern: p,
			}
			readings := synthesize(rng, cfg, p, zone)
			ds.Customers = append(ds.Customers, cust)
			ds.Readings = append(ds.Readings, readings)
			id++
		}
	}
	return ds
}

// cityLayout defines the synthetic city's districts in meters offset from
// the center: a commercial core, three residential districts, and an
// industrial strip.
type district struct {
	dx, dy float64 // offset from center in meters
	sigma  float64 // scatter radius in meters
	zone   store.ZoneType
}

var districts = []district{
	{0, 0, 500, store.ZoneCommercial},         // downtown core
	{-2500, 1500, 800, store.ZoneResidential}, // NW residential
	{2600, 1800, 800, store.ZoneResidential},  // NE residential
	{500, -2800, 900, store.ZoneResidential},  // S residential
	{3500, -500, 600, store.ZoneIndustrial},   // E industrial strip
}

// placeCustomer positions a customer in a district consistent with its
// pattern: constant-high skews commercial/industrial (offices, shops, cold
// stores), the household patterns skew residential.
func placeCustomer(rng *rand.Rand, center geo.Point, p Pattern) (geo.Point, store.ZoneType) {
	var d district
	switch p {
	case PatternConstantHigh:
		// 70% commercial core, 30% industrial.
		if rng.Float64() < 0.7 {
			d = districts[0]
		} else {
			d = districts[4]
		}
	case PatternIdle:
		// Vacant units appear everywhere; slight residential skew.
		d = districts[1+rng.Intn(3)]
	default:
		// Household patterns live in the residential districts.
		d = districts[1+rng.Intn(3)]
	}
	dx := d.dx + rng.NormFloat64()*d.sigma
	dy := d.dy + rng.NormFloat64()*d.sigma
	lon := center.Lon + dx/geo.MetersPerDegreeLon(center.Lat)
	lat := center.Lat + dy/geo.MetersPerDegreeLat
	return geo.Point{Lon: lon, Lat: lat}, d.zone
}

// synthesize produces the hourly series for one customer of pattern p in
// the given zone. Commercial/industrial customers carry a mild
// business-hours modulation on top of their pattern so the city's demand
// center of mass moves from the core at midday to the residential
// districts in the evening — the planted Figure 2 shift.
func synthesize(rng *rand.Rand, cfg Config, p Pattern, zone store.ZoneType) []store.Sample {
	hours := cfg.Days * 24
	out := make([]store.Sample, 0, hours)
	// Per-customer idiosyncrasy so customers of one pattern are similar but
	// not identical.
	scale := 0.8 + 0.4*rng.Float64()
	phase := rng.Float64() * 2 * math.Pi
	start := cfg.Start.Unix()
	for h := 0; h < hours; h++ {
		ts := start + int64(h)*3600
		t := time.Unix(ts, 0).UTC()
		v := baseValue(rng, p, t, scale, phase)
		if zone == store.ZoneCommercial || zone == store.ZoneIndustrial {
			// Business-hours modulation: ~±12% around the pattern level,
			// peaking mid-day. Kept gentle so constant-high stays "constant"
			// to the eye while still moving the city's demand centroid.
			hour := float64(t.Hour())
			v *= 0.88 + 0.24*diurnalCommercial(hour)
		}
		// Multiplicative noise.
		v *= 1 + 0.08*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		// Injected meter faults.
		if cfg.AnomalyRate > 0 && rng.Float64() < cfg.AnomalyRate {
			v = v*10 + 20 // implausible spike
		}
		if cfg.MissingRate > 0 && rng.Float64() < cfg.MissingRate {
			continue // dropped reading
		}
		out = append(out, store.Sample{TS: ts, Value: v})
	}
	return out
}

// dayOfYearFrac returns the position of t within the year in [0, 1).
func dayOfYearFrac(t time.Time) float64 {
	return float64(t.YearDay()-1) / 365.0
}

// seasonBimodal peaks in winter (heating) and summer (cooling): a
// double-humped annual shape, maximal near January and July.
func seasonBimodal(t time.Time) float64 {
	y := dayOfYearFrac(t)
	return 0.6 + 0.4*math.Cos(4*math.Pi*y) // period = half year
}

// seasonMild is a gentle single winter peak (lighting/heating).
func seasonMild(t time.Time) float64 {
	y := dayOfYearFrac(t)
	return 0.85 + 0.15*math.Cos(2*math.Pi*y)
}

// diurnal shapes, hour in local time [0, 24).
func diurnalResidential(hour float64) float64 {
	// Morning shoulder + strong evening peak (18-21).
	morning := 0.5 * gauss(hour, 7.5, 1.5)
	evening := 1.0 * gauss(hour, 19.5, 2.0)
	return 0.25 + morning + evening
}

func diurnalEarlyBird(hour float64) float64 {
	// The S1 query cohort: sharp 5:00-7:00 peak, modest evening.
	morning := 1.2 * gauss(hour, 6.0, 0.8)
	evening := 0.35 * gauss(hour, 19.0, 2.0)
	return 0.2 + morning + evening
}

func diurnalCommercial(hour float64) float64 {
	// Business hours plateau 8-17.
	v := 0.2
	if hour >= 7 && hour <= 18 {
		v = 1.0 - 0.25*math.Abs(hour-12.5)/5.5
	}
	return v
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

// baseValue composes the seasonal, weekly, and diurnal structure of each
// pattern into an hourly kWh value.
func baseValue(rng *rand.Rand, p Pattern, t time.Time, scale, phase float64) float64 {
	hour := float64(t.Hour()) + float64(t.Minute())/60
	weekend := t.Weekday() == time.Saturday || t.Weekday() == time.Sunday
	switch p {
	case PatternBimodal:
		base := 1.6 * scale * seasonBimodal(t) * diurnalResidential(hour)
		if weekend {
			base *= 1.15 // home more on weekends
		}
		return base
	case PatternEnergySaving:
		base := 0.45 * scale * seasonMild(t) * diurnalResidential(hour)
		if weekend {
			base *= 1.1
		}
		return base
	case PatternIdle:
		// Near-zero standby load with faint fridge cycling.
		return 0.05 * scale * (1 + 0.3*math.Sin(2*math.Pi*hour/3+phase))
	case PatternConstantHigh:
		// Flat high draw around the clock (cold stores, server rooms,
		// 24h shops); tiny diurnal ripple.
		return 3.2 * scale * (1 + 0.05*math.Sin(2*math.Pi*hour/24+phase))
	case PatternSuspicious:
		// Irregular: low baseline with heavy night-time bursts on random
		// days — the profile utilities flag for inspection.
		base := 0.3 * scale * diurnalResidential(hour)
		if (hour >= 23 || hour < 4) && rng.Float64() < 0.35 {
			base += 2.5 + 2*rng.Float64()
		}
		return base
	case PatternEarlyBird:
		base := 1.3 * scale * seasonMild(t) * diurnalEarlyBird(hour)
		if weekend {
			base *= 0.9 // early risers sleep in a little
		}
		return base
	default:
		return scale
	}
}

// LoadInto registers all customers in st and appends all readings.
func (d *Dataset) LoadInto(st *store.Store) error {
	for i, c := range d.Customers {
		if err := st.PutMeter(c.Meter); err != nil {
			return err
		}
		if _, err := st.AppendBatch(c.Meter.ID, d.Readings[i]); err != nil {
			return err
		}
	}
	return nil
}

// CustomerByID returns the customer with the given meter ID.
func (d *Dataset) CustomerByID(id int64) (Customer, bool) {
	for _, c := range d.Customers {
		if c.Meter.ID == id {
			return c, true
		}
	}
	return Customer{}, false
}

// DailyProfile returns the mean value per hour-of-day (24 values) of a
// sample slice — the canonical "typical pattern" representation View B
// draws.
func DailyProfile(samples []store.Sample) [24]float64 {
	var sums, counts [24]float64
	for _, s := range samples {
		h := time.Unix(s.TS, 0).UTC().Hour()
		sums[h] += s.Value
		counts[h]++
	}
	var out [24]float64
	for i := range sums {
		if counts[i] > 0 {
			out[i] = sums[i] / counts[i]
		}
	}
	return out
}

// MonthlyProfile returns the mean value per month (12 values).
func MonthlyProfile(samples []store.Sample) [12]float64 {
	var sums, counts [12]float64
	for _, s := range samples {
		m := int(time.Unix(s.TS, 0).UTC().Month()) - 1
		sums[m] += s.Value
		counts[m]++
	}
	var out [12]float64
	for i := range sums {
		if counts[i] > 0 {
			out[i] = sums[i] / counts[i]
		}
	}
	return out
}
