package kde

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"vap/internal/geo"
)

func box() geo.BBox {
	return geo.NewBBox(geo.Point{Lon: 12.4, Lat: 55.5}, geo.Point{Lon: 12.8, Lat: 55.9})
}

func TestEstimatePeakAtPointMass(t *testing.T) {
	pts := []WeightedPoint{{Loc: geo.Point{Lon: 12.6, Lat: 55.7}, Weight: 1}}
	f, err := Estimate(pts, box(), Config{Cols: 64, Rows: 64, Bandwidth: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	// The densest cell must be the one containing the point.
	bestIdx := 0
	for i, v := range f.Values {
		if v > f.Values[bestIdx] {
			bestIdx = i
		}
	}
	c, r := f.CellOf(geo.Point{Lon: 12.6, Lat: 55.7})
	if bestIdx != r*f.Cols+c {
		t.Errorf("peak at %d, want cell (%d,%d)=%d", bestIdx, c, r, r*f.Cols+c)
	}
}

func TestEstimateMassConservation(t *testing.T) {
	// Integral of a Gaussian KDE over a sufficiently large box equals the
	// mean weight (Eq. 3 has 1/n and sum c_i).
	rng := rand.New(rand.NewSource(1))
	var pts []WeightedPoint
	for i := 0; i < 50; i++ {
		pts = append(pts, WeightedPoint{
			Loc:    geo.Point{Lon: 12.6 + rng.NormFloat64()*0.01, Lat: 55.7 + rng.NormFloat64()*0.01},
			Weight: 1,
		})
	}
	f, err := Estimate(pts, box(), Config{Cols: 128, Rows: 128, Bandwidth: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Integral(); math.Abs(got-1) > 0.05 {
		t.Errorf("integral = %v, want ~1 (mean unit weight)", got)
	}
}

func TestEstimateWeightsScaleDensity(t *testing.T) {
	p := geo.Point{Lon: 12.6, Lat: 55.7}
	f1, _ := Estimate([]WeightedPoint{{Loc: p, Weight: 1}}, box(), Config{Bandwidth: 0.02})
	f2, _ := Estimate([]WeightedPoint{{Loc: p, Weight: 2}}, box(), Config{Bandwidth: 0.02})
	_, hi1 := f1.MinMax()
	_, hi2 := f2.MinMax()
	if math.Abs(hi2-2*hi1) > 1e-9*hi1 {
		t.Errorf("doubling weight: peak %v -> %v, want exactly 2x", hi1, hi2)
	}
}

func TestEstimateZeroWeightIgnored(t *testing.T) {
	p := geo.Point{Lon: 12.6, Lat: 55.7}
	f, err := Estimate([]WeightedPoint{{Loc: p, Weight: 0}}, box(), Config{Bandwidth: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if _, hi := f.MinMax(); hi != 0 {
		t.Errorf("zero-weight point produced density %v", hi)
	}
}

func TestEstimateErrors(t *testing.T) {
	if _, err := Estimate(nil, box(), Config{}); err == nil {
		t.Error("no points should fail")
	}
	pts := []WeightedPoint{{Loc: geo.Point{Lon: 12.6, Lat: 55.7}, Weight: 1}}
	if _, err := Estimate(pts, geo.EmptyBBox(), Config{}); err == nil {
		t.Error("empty box should fail")
	}
}

func TestKernelsIntegrateToOne(t *testing.T) {
	// Numerically integrate each kernel over the plane.
	for _, k := range []Kernel{KernelGaussian, KernelEpanechnikov, KernelUniform} {
		sum := 0.0
		const step = 0.01
		for x := -5.0; x <= 5; x += step {
			for y := -5.0; y <= 5; y += step {
				sum += kernelValue(k, x*x+y*y) * step * step
			}
		}
		if math.Abs(sum-1) > 0.01 {
			t.Errorf("%s integrates to %v, want 1", k, sum)
		}
	}
}

func TestCompactKernelsHaveCompactSupport(t *testing.T) {
	for _, k := range []Kernel{KernelEpanechnikov, KernelUniform} {
		if v := kernelValue(k, 1.0001); v != 0 {
			t.Errorf("%s outside support = %v", k, v)
		}
	}
	if v := kernelValue(KernelGaussian, 4); v == 0 {
		t.Error("gaussian should be positive everywhere")
	}
}

func TestTruncatedMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var pts []WeightedPoint
	for i := 0; i < 30; i++ {
		pts = append(pts, WeightedPoint{
			Loc:    geo.Point{Lon: 12.5 + rng.Float64()*0.2, Lat: 55.6 + rng.Float64()*0.2},
			Weight: rng.Float64(),
		})
	}
	cfg := Config{Cols: 48, Rows: 48, Bandwidth: 0.01}
	fast, err := Estimate(pts, box(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Exact = true
	exact, err := Estimate(pts, box(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, peak := exact.MinMax()
	for i := range fast.Values {
		if math.Abs(fast.Values[i]-exact.Values[i]) > 1e-5*peak {
			t.Fatalf("cell %d: fast %v vs exact %v", i, fast.Values[i], exact.Values[i])
		}
	}
}

func TestSilvermanBandwidthPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pts []WeightedPoint
	for i := 0; i < 100; i++ {
		pts = append(pts, WeightedPoint{
			Loc: geo.Point{Lon: 12.5 + rng.NormFloat64()*0.02, Lat: 55.7 + rng.NormFloat64()*0.02},
		})
	}
	h := SilvermanBandwidth(pts)
	if h <= 0 || h > 0.1 {
		t.Errorf("bandwidth = %v", h)
	}
	// Degenerate inputs still give a usable bandwidth.
	if h := SilvermanBandwidth(nil); h <= 0 {
		t.Errorf("nil bandwidth = %v", h)
	}
	same := []WeightedPoint{{Loc: geo.Point{Lon: 12.5, Lat: 55.7}}, {Loc: geo.Point{Lon: 12.5, Lat: 55.7}}}
	if h := SilvermanBandwidth(same); h <= 0 {
		t.Errorf("coincident bandwidth = %v", h)
	}
}

func TestFieldSub(t *testing.T) {
	p := geo.Point{Lon: 12.6, Lat: 55.7}
	f1, _ := Estimate([]WeightedPoint{{Loc: p, Weight: 1}}, box(), Config{Bandwidth: 0.02})
	f2, _ := Estimate([]WeightedPoint{{Loc: p, Weight: 3}}, box(), Config{Bandwidth: 0.02})
	diff, err := f2.Sub(f1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range diff.Values {
		want := f2.Values[i] - f1.Values[i]
		if diff.Values[i] != want {
			t.Fatalf("sub wrong at %d", i)
		}
	}
	// Geometry mismatch fails.
	other, _ := Estimate([]WeightedPoint{{Loc: p, Weight: 1}}, box(), Config{Cols: 32, Rows: 32, Bandwidth: 0.02})
	if _, err := f1.Sub(other); err == nil {
		t.Error("geometry mismatch should fail")
	}
}

func TestCellRoundTrip(t *testing.T) {
	f, _ := Estimate([]WeightedPoint{{Loc: geo.Point{Lon: 12.6, Lat: 55.7}, Weight: 1}},
		box(), Config{Cols: 40, Rows: 30, Bandwidth: 0.02})
	for _, probe := range []struct{ c, r int }{{0, 0}, {39, 29}, {20, 15}, {7, 23}} {
		ctr := f.CellCenter(probe.c, probe.r)
		c, r := f.CellOf(ctr)
		if c != probe.c || r != probe.r {
			t.Errorf("cell (%d,%d) center maps back to (%d,%d)", probe.c, probe.r, c, r)
		}
	}
}

func TestEstimateAtMatchesFieldPeak(t *testing.T) {
	p := geo.Point{Lon: 12.6, Lat: 55.7}
	pts := []WeightedPoint{{Loc: p, Weight: 1}}
	h := 0.02
	direct := EstimateAt(pts, p, h, KernelGaussian)
	// Analytical: w * K(0) / (n h^2) = (1/(2pi)) / h^2.
	want := 1 / (2 * math.Pi * h * h)
	if math.Abs(direct-want) > 1e-9*want {
		t.Errorf("EstimateAt = %v, want %v", direct, want)
	}
	if EstimateAt(pts, p, 0, KernelGaussian) != 0 {
		t.Error("zero bandwidth should return 0")
	}
}

func TestEstimateParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var pts []WeightedPoint
	for i := 0; i < 120; i++ {
		pts = append(pts, WeightedPoint{
			Loc:    geo.Point{Lon: 12.4 + rng.Float64()*0.4, Lat: 55.5 + rng.Float64()*0.4},
			Weight: rng.Float64(),
		})
	}
	for _, exact := range []bool{false, true} {
		serial, err := Estimate(pts, box(), Config{Cols: 80, Rows: 80, Bandwidth: 0.02, Exact: exact, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 7, 0} {
			par, err := Estimate(pts, box(), Config{Cols: 80, Rows: 80, Bandwidth: 0.02, Exact: exact, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d exact=%v: %v", workers, exact, err)
			}
			for i := range serial.Values {
				if par.Values[i] != serial.Values[i] {
					t.Fatalf("workers=%d exact=%v: cell %d = %v, serial %v",
						workers, exact, i, par.Values[i], serial.Values[i])
				}
			}
		}
	}
}

func TestEstimateCtxCancelled(t *testing.T) {
	pts := []WeightedPoint{{Loc: geo.Point{Lon: 12.6, Lat: 55.7}, Weight: 1}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EstimateCtx(ctx, pts, box(), Config{Cols: 64, Rows: 64, Bandwidth: 0.02}); err == nil {
		t.Fatal("cancelled context did not abort Estimate")
	}
}
