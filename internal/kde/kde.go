// Package kde implements the weighted two-dimensional kernel density
// estimation of the paper's Eq. 3:
//
//	f(x) = (1/n) * sum_i c_i * K_h(x - x_i)
//
// over a raster grid covering the study area. The Gaussian kernel is the
// paper's default ("it can cover a larger spatial area ... and has a lower
// computational complexity"); Epanechnikov and Uniform kernels are provided
// for the ablation. Evaluation is available both exactly (every point
// against every cell) and via a truncated-support fast path that skips
// kernel tails below numerical relevance.
package kde

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"vap/internal/exec"
	"vap/internal/geo"
)

// Kernel selects the smoothing kernel K.
type Kernel string

// Supported kernels.
const (
	KernelGaussian     Kernel = "gaussian"
	KernelEpanechnikov Kernel = "epanechnikov"
	KernelUniform      Kernel = "uniform"
)

// ErrInput flags invalid KDE input.
var ErrInput = errors.New("kde: invalid input")

// WeightedPoint is one consumption-weighted meter location (x_i, c_i).
type WeightedPoint struct {
	Loc    geo.Point
	Weight float64
}

// Config controls a density evaluation.
type Config struct {
	// Grid resolution.
	Cols, Rows int
	// Bandwidth in degrees. Zero selects Silverman's rule of thumb over
	// the point set.
	Bandwidth float64
	Kernel    Kernel
	// Exact disables the truncated-support fast path (used by the E2b
	// ablation; truncation error is below ~1e-5 of the peak density).
	Exact bool
	// Workers fans the grid evaluation out across row bands: 0 selects
	// runtime.NumCPU(), 1 forces the serial reference path. Bands are
	// disjoint raster rows, so the accumulation is lock-free.
	Workers int
}

func (c *Config) defaults() {
	if c.Cols <= 0 {
		c.Cols = 96
	}
	if c.Rows <= 0 {
		c.Rows = 96
	}
	if c.Kernel == "" {
		c.Kernel = KernelGaussian
	}
}

// Field is a scalar raster over a geographic box: Values[row*Cols+col],
// row 0 at the box's south edge.
type Field struct {
	Box        geo.BBox
	Cols, Rows int
	Values     []float64
	Bandwidth  float64
	Kernel     Kernel
}

// At returns the value at (col, row).
func (f *Field) At(col, row int) float64 { return f.Values[row*f.Cols+col] }

// Set assigns the value at (col, row).
func (f *Field) Set(col, row int, v float64) { f.Values[row*f.Cols+col] = v }

// CellCenter returns the geographic center of cell (col, row).
func (f *Field) CellCenter(col, row int) geo.Point {
	w := (f.Box.Max.Lon - f.Box.Min.Lon) / float64(f.Cols)
	h := (f.Box.Max.Lat - f.Box.Min.Lat) / float64(f.Rows)
	return geo.Point{
		Lon: f.Box.Min.Lon + (float64(col)+0.5)*w,
		Lat: f.Box.Min.Lat + (float64(row)+0.5)*h,
	}
}

// CellOf returns the cell containing p, clamped to the raster.
func (f *Field) CellOf(p geo.Point) (col, row int) {
	w := (f.Box.Max.Lon - f.Box.Min.Lon) / float64(f.Cols)
	h := (f.Box.Max.Lat - f.Box.Min.Lat) / float64(f.Rows)
	col = clamp(int((p.Lon-f.Box.Min.Lon)/w), 0, f.Cols-1)
	row = clamp(int((p.Lat-f.Box.Min.Lat)/h), 0, f.Rows-1)
	return col, row
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MinMax returns the extrema of the field.
func (f *Field) MinMax() (lo, hi float64) {
	if len(f.Values) == 0 {
		return 0, 0
	}
	lo, hi = f.Values[0], f.Values[0]
	for _, v := range f.Values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Sub returns f - g as a new field (the Shift operator of Eq. 4).
// The fields must share geometry.
func (f *Field) Sub(g *Field) (*Field, error) {
	if f.Cols != g.Cols || f.Rows != g.Rows || f.Box != g.Box {
		return nil, fmt.Errorf("kde: field geometry mismatch")
	}
	out := &Field{Box: f.Box, Cols: f.Cols, Rows: f.Rows,
		Values: make([]float64, len(f.Values)), Bandwidth: f.Bandwidth, Kernel: f.Kernel}
	for i := range out.Values {
		out.Values[i] = f.Values[i] - g.Values[i]
	}
	return out, nil
}

// Integral returns the raster sum times cell area (degree^2), a proxy for
// total mass used in conservation tests.
func (f *Field) Integral() float64 {
	w := (f.Box.Max.Lon - f.Box.Min.Lon) / float64(f.Cols)
	h := (f.Box.Max.Lat - f.Box.Min.Lat) / float64(f.Rows)
	s := 0.0
	for _, v := range f.Values {
		s += v
	}
	return s * w * h
}

// L1Norm returns sum |v| * cellArea.
func (f *Field) L1Norm() float64 {
	w := (f.Box.Max.Lon - f.Box.Min.Lon) / float64(f.Cols)
	h := (f.Box.Max.Lat - f.Box.Min.Lat) / float64(f.Rows)
	s := 0.0
	for _, v := range f.Values {
		s += math.Abs(v)
	}
	return s * w * h
}

// SilvermanBandwidth returns the rule-of-thumb bandwidth (in degrees) for
// the point set: 1.06 * min(std, IQR/1.34) * n^(-1/5), averaged over the
// two axes.
func SilvermanBandwidth(pts []WeightedPoint) float64 {
	n := len(pts)
	if n < 2 {
		return 0.01
	}
	lons := make([]float64, n)
	lats := make([]float64, n)
	for i, p := range pts {
		lons[i] = p.Loc.Lon
		lats[i] = p.Loc.Lat
	}
	h := (silverman1D(lons) + silverman1D(lats)) / 2
	if h <= 0 {
		return 0.01
	}
	return h
}

func silverman1D(xs []float64) float64 {
	n := float64(len(xs))
	mu := 0.0
	for _, x := range xs {
		mu += x
	}
	mu /= n
	v := 0.0
	for _, x := range xs {
		d := x - mu
		v += d * d
	}
	sd := math.Sqrt(v / n)
	iqr := quantile(xs, 0.75) - quantile(xs, 0.25)
	spread := sd
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	return 1.06 * spread * math.Pow(n, -0.2)
}

func quantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	// insertion sort is fine at the call sizes here; avoid pulling sort for
	// clarity of the hot path. n is customer count (hundreds).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	h := q * float64(len(s)-1)
	lo := int(h)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Estimate evaluates Eq. 3 over box with the given points and config.
// Weights c_i are used as provided (the query layer normalizes them).
func Estimate(pts []WeightedPoint, box geo.BBox, cfg Config) (*Field, error) {
	return EstimateCtx(context.Background(), pts, box, cfg)
}

// EstimateCtx evaluates Eq. 3 with the raster split into disjoint
// row bands fanned out across cfg.Workers goroutines. Each band
// accumulates only its own cells, so no synchronization is needed on the
// value buffer; ctx cancellation aborts between bands.
func EstimateCtx(ctx context.Context, pts []WeightedPoint, box geo.BBox, cfg Config) (*Field, error) {
	if len(pts) == 0 {
		return nil, ErrInput
	}
	if box.IsEmpty() {
		return nil, fmt.Errorf("kde: empty study area box")
	}
	cfg.defaults()
	h := cfg.Bandwidth
	if h <= 0 {
		h = SilvermanBandwidth(pts)
	}
	f := &Field{
		Box: box, Cols: cfg.Cols, Rows: cfg.Rows,
		Values:    make([]float64, cfg.Cols*cfg.Rows),
		Bandwidth: h, Kernel: cfg.Kernel,
	}
	cellW := (box.Max.Lon - box.Min.Lon) / float64(cfg.Cols)
	cellH := (box.Max.Lat - box.Min.Lat) / float64(cfg.Rows)
	invN := 1 / float64(len(pts))
	// Support radius: the Gaussian tail beyond 5h contributes < 4e-6 of
	// the peak; compact kernels end exactly at h.
	support := h
	if cfg.Kernel == KernelGaussian {
		support = 5 * h
	}
	// Precompute each point's raster footprint once so every band pays
	// only a range intersection per point.
	type footprint struct {
		c0, c1, r0, r1 int
	}
	fps := make([]footprint, len(pts))
	for i, p := range pts {
		fp := footprint{0, cfg.Cols - 1, 0, cfg.Rows - 1}
		if !cfg.Exact {
			fp.c0 = clamp(int((p.Loc.Lon-support-box.Min.Lon)/cellW), 0, cfg.Cols-1)
			fp.c1 = clamp(int((p.Loc.Lon+support-box.Min.Lon)/cellW), 0, cfg.Cols-1)
			fp.r0 = clamp(int((p.Loc.Lat-support-box.Min.Lat)/cellH), 0, cfg.Rows-1)
			fp.r1 = clamp(int((p.Loc.Lat+support-box.Min.Lat)/cellH), 0, cfg.Rows-1)
		}
		fps[i] = fp
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	err := exec.ForEachChunk(ctx, cfg.Rows, workers, func(lo, hi int) error {
		for k, p := range pts {
			if p.Weight == 0 {
				continue
			}
			fp := fps[k]
			r0, r1 := fp.r0, fp.r1
			if r0 < lo {
				r0 = lo
			}
			if r1 >= hi {
				r1 = hi - 1
			}
			for r := r0; r <= r1; r++ {
				cy := box.Min.Lat + (float64(r)+0.5)*cellH
				dy := (cy - p.Loc.Lat) / h
				for c := fp.c0; c <= fp.c1; c++ {
					cx := box.Min.Lon + (float64(c)+0.5)*cellW
					dx := (cx - p.Loc.Lon) / h
					u2 := dx*dx + dy*dy
					k := kernelValue(cfg.Kernel, u2)
					if k != 0 {
						f.Values[r*cfg.Cols+c] += invN * p.Weight * k / (h * h)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// kernelValue evaluates the 2-D kernel given the squared scaled distance
// u2 = ||(x - xi)/h||^2.
func kernelValue(k Kernel, u2 float64) float64 {
	switch k {
	case KernelGaussian:
		return math.Exp(-0.5*u2) / (2 * math.Pi)
	case KernelEpanechnikov:
		if u2 >= 1 {
			return 0
		}
		return 2 / math.Pi * (1 - u2)
	case KernelUniform:
		if u2 >= 1 {
			return 0
		}
		return 1 / math.Pi
	default:
		return 0
	}
}

// EstimateAt evaluates the density at a single point exactly.
func EstimateAt(pts []WeightedPoint, at geo.Point, h float64, k Kernel) float64 {
	if h <= 0 || len(pts) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range pts {
		dx := (at.Lon - p.Loc.Lon) / h
		dy := (at.Lat - p.Loc.Lat) / h
		s += p.Weight * kernelValue(k, dx*dx+dy*dy)
	}
	return s / (float64(len(pts)) * h * h)
}
