package govern

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

type tenantKey struct{}
type grantKey struct{}

// WithTenant stamps the request's tenant on ctx (empty = DefaultTenant).
func WithTenant(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		tenant = DefaultTenant
	}
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom returns the tenant stamped on ctx, or DefaultTenant.
func TenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantKey{}).(string); ok && t != "" {
		return t
	}
	return DefaultTenant
}

// WithGrant stamps an admitted grant on ctx so the execution layers can
// pace against it.
func WithGrant(ctx context.Context, g *Grant) context.Context {
	return context.WithValue(ctx, grantKey{}, g)
}

// GrantFrom returns the grant stamped on ctx, or nil.
func GrantFrom(ctx context.Context) *Grant {
	g, _ := ctx.Value(grantKey{}).(*Grant)
	return g
}

// PaceFunc resolves ctx's grant once and returns the per-batch check the
// executor's hot loops call: Grant.Pace for governed work, a plain
// ctx.Err probe otherwise. Resolving up front keeps the context-value
// walk off the batch loop.
func PaceFunc(ctx context.Context) func(context.Context) error {
	if g := GrantFrom(ctx); g != nil {
		return g.Pace
	}
	return func(ctx context.Context) error { return ctx.Err() }
}

// ParseBytes parses a human-friendly byte size: a plain integer, or an
// integer/decimal with a KB/MB/GB (decimal) or KiB/MiB/GiB (binary)
// suffix, case-insensitive ("512MiB", "1gb", "65536").
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("govern: empty byte size")
	}
	mult := int64(1)
	lower := strings.ToLower(t)
	for _, suf := range []struct {
		name string
		mult int64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30},
		{"kb", 1000}, {"mb", 1000 * 1000}, {"gb", 1000 * 1000 * 1000},
		{"b", 1},
	} {
		if strings.HasSuffix(lower, suf.name) {
			mult = suf.mult
			t = strings.TrimSpace(t[:len(t)-len(suf.name)])
			break
		}
	}
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("govern: bad byte size %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("govern: negative byte size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// ParseTenantQuotas parses the -tenant-quotas flag:
//
//	name=maxConcurrent,memBudget,maxCostSamples[;name=...]
//
// e.g. "dash=16,64MiB,2000000;batch=2,256MiB,0". Each field may be 0
// (inherit the global bound / no ceiling); memBudget accepts ParseBytes
// suffixes and maxCostSamples accepts scientific notation ("5e8").
func ParseTenantQuotas(s string) (map[string]Quota, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	out := make(map[string]Quota)
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("govern: bad tenant quota %q (want name=conc,mem,cost)", part)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("govern: duplicate tenant %q in quotas", name)
		}
		fields := strings.Split(spec, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("govern: tenant %q wants 3 comma-separated fields (conc,mem,cost), got %d", name, len(fields))
		}
		var q Quota
		conc, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil || conc < 0 {
			return nil, fmt.Errorf("govern: tenant %q: bad max-concurrent %q", name, fields[0])
		}
		q.MaxConcurrent = conc
		mem := strings.TrimSpace(fields[1])
		if mem != "0" {
			q.MemBudget, err = ParseBytes(mem)
			if err != nil {
				return nil, fmt.Errorf("govern: tenant %q: %w", name, err)
			}
		}
		costStr := strings.TrimSpace(fields[2])
		cost, err := strconv.ParseFloat(costStr, 64)
		if err != nil || cost < 0 {
			return nil, fmt.Errorf("govern: tenant %q: bad cost ceiling %q", name, fields[2])
		}
		q.MaxCostSamples = int64(cost)
		out[name] = q
	}
	return out, nil
}
