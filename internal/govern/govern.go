// Package govern is VAP's multi-tenant resource-governance layer: an
// admission controller the query and ingest front doors pass every
// request through before it reaches the execution engine.
//
// Each request declares a tenant (HTTP header / flag, "default" when
// absent) and carries a class — interactive or analytics, inferred from
// the planner's cost estimates for queries, ingest for writes. The
// controller enforces:
//
//   - per-tenant and global concurrency plus in-flight memory budgets:
//     a request that does not fit waits in a priority queue ordered by
//     class (interactive ahead of ingest ahead of analytics), so cheap
//     dashboard reads never wait behind monster scans;
//   - per-tenant cost ceilings: a query whose estimated samples (or
//     estimated in-flight memory) exceed the tenant's ceiling is
//     rejected up front with a typed *CostError ("query too expensive,
//     est=N") — it never queues and never touches the exec engine;
//   - overload shedding: when the queue is full or a waiter has waited
//     past the bound, the lowest-priority work is shed with a typed
//     *ShedError carrying a Retry-After hint (HTTP 429), instead of
//     stacking goroutines until the process OOMs;
//   - execution pacing: admitted analytics grants yield inside the
//     executor's batch loop (Grant.Pace) whenever interactive work is
//     active or queued, bounding cheap-query tail latency even while a
//     monster scan is running.
//
// The controller is deliberately storage-agnostic: callers translate
// planner estimates into Request fields, so the package depends only on
// the standard library.
package govern

import (
	"container/heap"
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Class ranks a request for admission priority.
type Class string

const (
	// ClassInteractive: cheap reads (dashboard queries under the cost
	// cutoff). Admitted ahead of everything else; their presence paces
	// running analytics scans.
	ClassInteractive Class = "interactive"
	// ClassIngest: writes. Ahead of analytics (data loss hurts more than
	// a slow report) but behind interactive reads.
	ClassIngest Class = "ingest"
	// ClassAnalytics: expensive scans. Admitted last, shed first, and
	// paced while interactive work is in flight.
	ClassAnalytics Class = "analytics"
	// ClassConn marks connection-admission rejections (the wire
	// protocol's max-connections gate); it never enters the statement
	// queue.
	ClassConn Class = "connection"
)

// classRank orders classes for the admission queue and the shedding
// policy: lower admits first, higher sheds first.
func classRank(c Class) int {
	switch c {
	case ClassInteractive:
		return 0
	case ClassIngest:
		return 1
	default:
		return 2
	}
}

// DefaultTenant is the tenant requests fall under when they declare none.
const DefaultTenant = "default"

// Quota bounds one tenant. Zero fields inherit the controller-wide value
// (concurrency, memory) or mean unlimited (cost ceiling).
type Quota struct {
	// MaxConcurrent bounds the tenant's concurrently admitted requests
	// (0 = the controller's global bound only).
	MaxConcurrent int
	// MemBudget bounds the tenant's estimated in-flight bytes
	// (0 = the controller's global budget only).
	MemBudget int64
	// MaxCostSamples rejects any single query whose estimated decoded
	// samples exceed it (0 = no per-query ceiling).
	MaxCostSamples int64
}

// Config tunes a Controller. The zero value selects production-safe
// defaults sized to the host.
type Config struct {
	// MaxConcurrent is the global concurrently-admitted request bound
	// (<= 0 selects 4 x NumCPU).
	MaxConcurrent int
	// MemBudget is the global estimated in-flight memory bound in bytes
	// (<= 0 selects 512 MiB).
	MemBudget int64
	// DefaultQuota applies to tenants absent from Tenants.
	DefaultQuota Quota
	// Tenants maps tenant names to explicit quotas.
	Tenants map[string]Quota
	// MaxQueue bounds the admission queue; beyond it the lowest-priority
	// work is shed (<= 0 selects 256).
	MaxQueue int
	// MaxQueueWait sheds a waiter that has queued this long (<= 0
	// selects 5s) — bounded queueing, not unbounded goroutine stacking.
	MaxQueueWait time.Duration
	// RetryAfter is the hint shed responses carry (<= 0 selects 1s).
	RetryAfter time.Duration
	// InteractiveCutoff classifies queries: estimated samples at or
	// below it are interactive, above analytics (<= 0 selects 2M —
	// roughly 20ms of vectorized decode).
	InteractiveCutoff int64
	// QueryDeadline, when positive, stamps every admitted query grant
	// with an execution deadline enforced by the executor's per-batch
	// cancellation checks (0 = only the front door's handler timeout).
	QueryDeadline time.Duration
	// MaxConns bounds concurrently open long-lived client connections
	// (the wire-protocol front door calls ConnOpen per accepted
	// connection, before any handshake crypto, so a connection flood is
	// bounded up front). <= 0 means unlimited — the HTTP front door
	// bounds connections with its own server timeouts.
	MaxConns int
}

func (c *Config) defaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4 * runtime.NumCPU()
	}
	if c.MemBudget <= 0 {
		c.MemBudget = 512 << 20
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.InteractiveCutoff <= 0 {
		c.InteractiveCutoff = 2_000_000
	}
}

// CostError is the typed up-front rejection for a query whose estimate
// exceeds its tenant's ceiling. It maps to HTTP 422: retrying without
// narrowing the query cannot succeed.
type CostError struct {
	Tenant string
	// Est / Ceiling are estimated decoded samples when the sample
	// ceiling rejected the query.
	Est, Ceiling int64
	// EstMem / MemBudget are set instead when the query's estimated
	// in-flight memory alone exceeds the budget it would run under.
	EstMem, MemBudget int64
}

func (e *CostError) Error() string {
	if e.MemBudget > 0 {
		return fmt.Sprintf("govern: query too expensive, est=%d bytes in flight exceeds tenant %q memory budget %d",
			e.EstMem, e.Tenant, e.MemBudget)
	}
	return fmt.Sprintf("govern: query too expensive, est=%d samples exceeds tenant %q cost ceiling %d",
		e.Est, e.Tenant, e.Ceiling)
}

// ShedError is the typed overload rejection: the queue was full (or the
// wait bound expired) and this request was the lowest-priority work. It
// maps to HTTP 429 with Retry-After.
type ShedError struct {
	Tenant     string
	Class      Class
	Reason     string
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("govern: overloaded, %s request for tenant %q shed (%s); retry after %s",
		e.Class, e.Tenant, e.Reason, e.RetryAfter)
}

// Request describes one unit of work asking for admission.
type Request struct {
	Tenant string
	// Class is the admission class; empty lets the controller classify
	// from EstSamples.
	Class Class
	// EstSamples is the planner's decoded-sample estimate (0 for
	// ingest).
	EstSamples int64
	// EstMem is the estimated peak in-flight bytes while the request
	// runs; reserved against the memory budgets until Release.
	EstMem int64
}

// waitBuckets are the queue-wait histogram upper bounds; the last bucket
// is unbounded.
var waitBuckets = []time.Duration{
	time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond, time.Second, 10 * time.Second,
}

// WaitBucketLabels names the histogram buckets Snapshot reports, aligned
// with TenantSnapshot.QueueWaitHist.
var WaitBucketLabels = []string{"<1ms", "<10ms", "<100ms", "<1s", "<10s", ">=10s"}

// tenantState is one tenant's live accounting. Guarded by Controller.mu.
type tenantState struct {
	quota     Quota
	active    int
	activeMem int64

	admitted, queued, shed, rejected uint64
	waitHist                         [6]uint64
	maxWait                          time.Duration

	// conns is the tenant's open wire-protocol connections (bound post-
	// auth via ConnBind); connShed counts rejected connection attempts.
	conns int
}

// waiter is one queued admission request.
type waiter struct {
	req   Request
	rank  int
	seq   uint64
	enq   time.Time
	timer *time.Timer
	ready chan waitResult
	idx   int // heap index; -1 once dispatched or shed
}

type waitResult struct {
	grant *Grant
	err   error
}

// waitHeap orders waiters by (class rank, arrival): strict class
// priority, FIFO within a class.
type waitHeap []*waiter

func (h waitHeap) Len() int { return len(h) }
func (h waitHeap) Less(i, j int) bool {
	if h[i].rank != h[j].rank {
		return h[i].rank < h[j].rank
	}
	return h[i].seq < h[j].seq
}
func (h waitHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *waitHeap) Push(x any) {
	w := x.(*waiter)
	w.idx = len(*h)
	*h = append(*h, w)
}
func (h *waitHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.idx = -1
	*h = old[:n-1]
	return w
}

// Controller is the admission controller. Safe for concurrent use.
type Controller struct {
	cfg Config

	mu        sync.Mutex
	seq       uint64
	active    int
	activeMem int64
	tenants   map[string]*tenantState
	queue     waitHeap
	conns     int
	connsShed uint64

	// pressure counts interactive requests admitted or queued — the
	// lock-free signal analytics grants pace on.
	pressure atomic.Int64
}

// New returns a controller with cfg (zero value = defaults).
func New(cfg Config) *Controller {
	cfg.defaults()
	return &Controller{cfg: cfg, tenants: make(map[string]*tenantState)}
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Classify maps a planner sample estimate onto an admission class.
func (c *Controller) Classify(estSamples int64) Class {
	if estSamples > c.cfg.InteractiveCutoff {
		return ClassAnalytics
	}
	return ClassInteractive
}

func (c *Controller) tenantLocked(name string) *tenantState {
	ts, ok := c.tenants[name]
	if !ok {
		q := c.cfg.DefaultQuota
		if tq, ok := c.cfg.Tenants[name]; ok {
			q = tq
		}
		ts = &tenantState{quota: q}
		c.tenants[name] = ts
	}
	return ts
}

// memBudgetFor returns the tightest memory budget req would run under.
func (c *Controller) memBudgetFor(ts *tenantState) int64 {
	b := c.cfg.MemBudget
	if q := ts.quota.MemBudget; q > 0 && (b <= 0 || q < b) {
		b = q
	}
	return b
}

func (c *Controller) fitsLocked(ts *tenantState, req Request) bool {
	if c.active >= c.cfg.MaxConcurrent {
		return false
	}
	if c.cfg.MemBudget > 0 && c.activeMem+req.EstMem > c.cfg.MemBudget {
		return false
	}
	if q := ts.quota.MaxConcurrent; q > 0 && ts.active >= q {
		return false
	}
	if q := ts.quota.MemBudget; q > 0 && ts.activeMem+req.EstMem > q {
		return false
	}
	return true
}

// admitLocked books req as active and returns its grant. wait is the
// time spent queued (0 for fast-path admissions).
func (c *Controller) admitLocked(ts *tenantState, req Request, wait time.Duration) *Grant {
	c.active++
	c.activeMem += req.EstMem
	ts.active++
	ts.activeMem += req.EstMem
	ts.admitted++
	bi := len(waitBuckets)
	for i, ub := range waitBuckets {
		if wait < ub {
			bi = i
			break
		}
	}
	ts.waitHist[bi]++
	if wait > ts.maxWait {
		ts.maxWait = wait
	}
	g := &Grant{c: c, tenant: req.Tenant, class: req.Class, mem: req.EstMem}
	if c.cfg.QueryDeadline > 0 && req.Class != ClassIngest {
		g.deadline = time.Now().Add(c.cfg.QueryDeadline)
	}
	return g
}

// Admit grants req admission, queuing it (class-priority, FIFO within a
// class) while it does not fit the concurrency or memory budgets.
// Typed failures: *CostError when the request exceeds a per-query
// ceiling (never queues), *ShedError when overload shed it (queue full,
// wait bound exceeded, or displaced by higher-priority work), or ctx's
// error when the caller gave up first. The returned grant must be
// Released exactly once; Release is idempotent.
func (c *Controller) Admit(ctx context.Context, req Request) (*Grant, error) {
	if req.Tenant == "" {
		req.Tenant = DefaultTenant
	}
	if req.Class == "" {
		req.Class = c.Classify(req.EstSamples)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	c.mu.Lock()
	ts := c.tenantLocked(req.Tenant)
	// Cost ceilings reject before any queueing: a query that can never
	// run must not occupy a queue slot (or shed somebody else).
	if q := ts.quota.MaxCostSamples; q > 0 && req.EstSamples > q {
		ts.rejected++
		c.mu.Unlock()
		return nil, &CostError{Tenant: req.Tenant, Est: req.EstSamples, Ceiling: q}
	}
	if mb := c.memBudgetFor(ts); mb > 0 && req.EstMem > mb {
		ts.rejected++
		c.mu.Unlock()
		return nil, &CostError{Tenant: req.Tenant, EstMem: req.EstMem, MemBudget: mb}
	}
	if req.Class == ClassInteractive {
		c.pressure.Add(1)
	}
	if c.fitsLocked(ts, req) {
		g := c.admitLocked(ts, req, 0)
		c.mu.Unlock()
		return g, nil
	}

	// Queue. A full queue sheds the lowest-priority work: the newcomer
	// when nothing waiting ranks below it, the worst waiter otherwise.
	if len(c.queue) >= c.cfg.MaxQueue {
		worst := c.worstLocked()
		if worst == nil || classRank(req.Class) >= worst.rank {
			ts.shed++
			if req.Class == ClassInteractive {
				c.pressure.Add(-1)
			}
			c.mu.Unlock()
			return nil, &ShedError{Tenant: req.Tenant, Class: req.Class, Reason: "admission queue full", RetryAfter: c.cfg.RetryAfter}
		}
		c.shedLocked(worst, "displaced by higher-priority work")
	}
	w := &waiter{req: req, rank: classRank(req.Class), seq: c.seq, enq: time.Now(), ready: make(chan waitResult, 1)}
	c.seq++
	heap.Push(&c.queue, w)
	ts.queued++
	w.timer = time.AfterFunc(c.cfg.MaxQueueWait, func() { c.expireWaiter(w) })
	c.mu.Unlock()

	select {
	case <-ctx.Done():
		c.abandonWaiter(w)
		return nil, ctx.Err()
	case res := <-w.ready:
		return res.grant, res.err
	}
}

// worstLocked returns the lowest-priority (highest rank, latest arrival)
// waiter, or nil when the queue is empty.
func (c *Controller) worstLocked() *waiter {
	var worst *waiter
	for _, w := range c.queue {
		if worst == nil || w.rank > worst.rank || (w.rank == worst.rank && w.seq > worst.seq) {
			worst = w
		}
	}
	return worst
}

// shedLocked removes a queued waiter and completes its Admit with a
// ShedError. Callers hold c.mu.
func (c *Controller) shedLocked(w *waiter, reason string) {
	heap.Remove(&c.queue, w.idx)
	w.timer.Stop()
	ts := c.tenantLocked(w.req.Tenant)
	ts.shed++
	if w.req.Class == ClassInteractive {
		c.pressure.Add(-1)
	}
	w.ready <- waitResult{err: &ShedError{Tenant: w.req.Tenant, Class: w.req.Class, Reason: reason, RetryAfter: c.cfg.RetryAfter}}
}

// expireWaiter sheds w if it is still queued when its wait bound fires.
func (c *Controller) expireWaiter(w *waiter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.idx < 0 {
		return // already dispatched or shed
	}
	c.shedLocked(w, fmt.Sprintf("queue wait exceeded %s", c.cfg.MaxQueueWait))
}

// abandonWaiter resolves the race between caller-context cancellation
// and a concurrent dispatch: if w is still queued it is removed quietly;
// if it was already granted, the unclaimed grant is released.
func (c *Controller) abandonWaiter(w *waiter) {
	c.mu.Lock()
	if w.idx >= 0 {
		heap.Remove(&c.queue, w.idx)
		w.timer.Stop()
		if w.req.Class == ClassInteractive {
			c.pressure.Add(-1)
		}
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	// Dispatched (or shed) before we abandoned: the buffered channel
	// already holds the result.
	if res := <-w.ready; res.grant != nil {
		res.grant.Release()
	}
}

// dispatchLocked admits every queued waiter that now fits, in priority
// order. A waiter that does not fit (its tenant's quota is still
// exhausted) is skipped rather than blocking the waiters behind it.
// Callers hold c.mu.
func (c *Controller) dispatchLocked() {
	if len(c.queue) == 0 {
		return
	}
	var kept []*waiter
	for len(c.queue) > 0 {
		if c.active >= c.cfg.MaxConcurrent {
			break
		}
		w := heap.Pop(&c.queue).(*waiter)
		ts := c.tenantLocked(w.req.Tenant)
		if !c.fitsLocked(ts, w.req) {
			kept = append(kept, w)
			continue
		}
		w.timer.Stop()
		g := c.admitLocked(ts, w.req, time.Since(w.enq))
		w.ready <- waitResult{grant: g}
	}
	for _, w := range kept {
		heap.Push(&c.queue, w)
	}
}

// ConnOpen is the per-connection admission hook for long-lived
// transports: the wire server calls it for every accepted TCP connection
// BEFORE the handshake, so a connection flood is shed without spending
// any scramble/auth work. It returns a release func the connection's
// goroutine must call exactly once on close, or a *ShedError (class
// "connection") when Config.MaxConns connections are already open.
func (c *Controller) ConnOpen() (func(), error) {
	c.mu.Lock()
	if c.cfg.MaxConns > 0 && c.conns >= c.cfg.MaxConns {
		c.connsShed++
		c.mu.Unlock()
		return nil, &ShedError{
			Tenant: DefaultTenant, Class: ClassConn,
			Reason:     fmt.Sprintf("connection limit %d reached", c.cfg.MaxConns),
			RetryAfter: c.cfg.RetryAfter,
		}
	}
	c.conns++
	c.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.conns--
			c.mu.Unlock()
		})
	}, nil
}

// ConnBind attributes an admitted connection to its authenticated tenant
// (ConnOpen runs pre-auth, when the tenant is unknown). The returned
// unbind func decrements the tenant's gauge; like ConnOpen's release it
// must be called exactly once and is idempotent.
func (c *Controller) ConnBind(tenant string) func() {
	if tenant == "" {
		tenant = DefaultTenant
	}
	c.mu.Lock()
	c.tenantLocked(tenant).conns++
	c.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.tenantLocked(tenant).conns--
			c.mu.Unlock()
		})
	}
}

// Grant is one admitted request's reservation. Release returns its
// concurrency slot and memory reservation; it is idempotent and must be
// called when the work finishes (success or failure).
type Grant struct {
	c        *Controller
	tenant   string
	class    Class
	mem      int64
	deadline time.Time
	released atomic.Bool
}

// Tenant returns the grant's tenant.
func (g *Grant) Tenant() string { return g.tenant }

// Class returns the admission class the request ran under.
func (g *Grant) Class() Class { return g.class }

// Deadline returns the execution deadline the controller stamped on the
// grant (zero when none is configured).
func (g *Grant) Deadline() time.Time { return g.deadline }

// Release returns the grant's reservations and dispatches newly fitting
// waiters. Safe to call more than once.
func (g *Grant) Release() {
	if g == nil || !g.released.CompareAndSwap(false, true) {
		return
	}
	c := g.c
	c.mu.Lock()
	ts := c.tenantLocked(g.tenant)
	c.active--
	c.activeMem -= g.mem
	ts.active--
	ts.activeMem -= g.mem
	if g.class == ClassInteractive {
		c.pressure.Add(-1)
	}
	c.dispatchLocked()
	c.mu.Unlock()
}

// paceSleep is how long an analytics grant yields per batch while
// interactive work is in flight: long enough that a queued dashboard
// read gets the CPU, short enough that analytics still advances
// ~5k batches/s under constant interactive pressure.
const paceSleep = 200 * time.Microsecond

// Pace is the executor's per-batch check for an admitted request: it
// returns ctx's error as soon as the deadline or cancellation fires,
// and — for analytics grants — yields the CPU between batches (a
// scheduler yield normally, a short sleep while interactive work is
// active or queued) so monster scans cannot monopolize cores against
// cheap reads. Nil-receiver safe: ungoverned scans just check ctx.
func (g *Grant) Pace(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if g == nil || g.class != ClassAnalytics {
		return nil
	}
	if g.c.pressure.Load() > 0 {
		time.Sleep(paceSleep)
		return ctx.Err()
	}
	runtime.Gosched()
	return nil
}

// TenantSnapshot is one tenant's observable governance state.
type TenantSnapshot struct {
	Admitted       uint64            `json:"admitted"`
	Queued         uint64            `json:"queued"`
	Shed           uint64            `json:"shed"`
	RejectedCost   uint64            `json:"rejected_cost"`
	Active         int               `json:"active"`
	ActiveMemBytes int64             `json:"active_mem_bytes"`
	MaxWaitMS      int64             `json:"max_wait_ms"`
	QueueWaitHist  map[string]uint64 `json:"queue_wait_hist"`
	OpenConns      int               `json:"open_conns"`
}

// Snapshot is the controller's observable state, shaped for /api/stats.
type Snapshot struct {
	MaxConcurrent  int                       `json:"max_concurrent"`
	MemBudgetBytes int64                     `json:"mem_budget_bytes"`
	Active         int                       `json:"active"`
	ActiveMemBytes int64                     `json:"active_mem_bytes"`
	QueueDepth     int                       `json:"queue_depth"`
	Interactive    int64                     `json:"interactive_in_flight"`
	OpenConns      int                       `json:"open_conns"`
	MaxConns       int                       `json:"max_conns"`
	ConnsShed      uint64                    `json:"conns_shed"`
	Tenants        map[string]TenantSnapshot `json:"tenants"`
}

// Snapshot returns a copy of the controller's counters and gauges.
func (c *Controller) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Snapshot{
		MaxConcurrent:  c.cfg.MaxConcurrent,
		MemBudgetBytes: c.cfg.MemBudget,
		Active:         c.active,
		ActiveMemBytes: c.activeMem,
		QueueDepth:     len(c.queue),
		Interactive:    c.pressure.Load(),
		OpenConns:      c.conns,
		MaxConns:       c.cfg.MaxConns,
		ConnsShed:      c.connsShed,
		Tenants:        make(map[string]TenantSnapshot, len(c.tenants)),
	}
	for name, ts := range c.tenants {
		hist := make(map[string]uint64, len(WaitBucketLabels))
		for i, label := range WaitBucketLabels {
			hist[label] = ts.waitHist[i]
		}
		out.Tenants[name] = TenantSnapshot{
			Admitted:       ts.admitted,
			Queued:         ts.queued,
			Shed:           ts.shed,
			RejectedCost:   ts.rejected,
			Active:         ts.active,
			ActiveMemBytes: ts.activeMem,
			MaxWaitMS:      ts.maxWait.Milliseconds(),
			QueueWaitHist:  hist,
			OpenConns:      ts.conns,
		}
	}
	return out
}
