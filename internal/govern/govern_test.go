package govern

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmitFastPathAndRelease(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, MemBudget: 100})
	g1, err := c.Admit(context.Background(), Request{Tenant: "a", EstMem: 40})
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	g2, err := c.Admit(context.Background(), Request{Tenant: "a", EstMem: 40})
	if err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	snap := c.Snapshot()
	if snap.Active != 2 || snap.ActiveMemBytes != 80 {
		t.Fatalf("active=%d mem=%d, want 2/80", snap.Active, snap.ActiveMemBytes)
	}
	g1.Release()
	g1.Release() // idempotent
	g2.Release()
	snap = c.Snapshot()
	if snap.Active != 0 || snap.ActiveMemBytes != 0 {
		t.Fatalf("after release: active=%d mem=%d, want 0/0", snap.Active, snap.ActiveMemBytes)
	}
	if got := snap.Tenants["a"].Admitted; got != 2 {
		t.Fatalf("tenant admitted=%d, want 2", got)
	}
}

func TestCostCeilingRejects(t *testing.T) {
	c := New(Config{Tenants: map[string]Quota{"capped": {MaxCostSamples: 1000}}})
	_, err := c.Admit(context.Background(), Request{Tenant: "capped", EstSamples: 5000})
	var ce *CostError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CostError, got %v", err)
	}
	if ce.Est != 5000 || ce.Ceiling != 1000 {
		t.Fatalf("cost error fields: %+v", ce)
	}
	if want := "query too expensive, est=5000"; !contains(ce.Error(), want) {
		t.Fatalf("error %q does not contain %q", ce.Error(), want)
	}
	if got := c.Snapshot().Tenants["capped"].RejectedCost; got != 1 {
		t.Fatalf("rejected_cost=%d, want 1", got)
	}
	// Under the ceiling: admitted.
	g, err := c.Admit(context.Background(), Request{Tenant: "capped", EstSamples: 1000})
	if err != nil {
		t.Fatalf("at-ceiling admit: %v", err)
	}
	g.Release()
}

func TestMemBudgetRejectsImpossibleRequest(t *testing.T) {
	c := New(Config{MemBudget: 1 << 20})
	_, err := c.Admit(context.Background(), Request{EstMem: 2 << 20})
	var ce *CostError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CostError for over-budget memory, got %v", err)
	}
	if ce.EstMem != 2<<20 || ce.MemBudget != 1<<20 {
		t.Fatalf("mem cost error fields: %+v", ce)
	}
}

func TestQueueAdmitsOnRelease(t *testing.T) {
	c := New(Config{MaxConcurrent: 1})
	g1, err := c.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		g2, err := c.Admit(context.Background(), Request{})
		if err == nil {
			g2.Release()
		}
		got <- err
	}()
	// The second admit must be queued, not rejected.
	deadline := time.After(2 * time.Second)
	for c.Snapshot().QueueDepth == 0 {
		select {
		case err := <-got:
			t.Fatalf("second admit finished before release: %v", err)
		case <-deadline:
			t.Fatal("second admit never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	g1.Release()
	if err := <-got; err != nil {
		t.Fatalf("queued admit after release: %v", err)
	}
	snap := c.Snapshot()
	if snap.Tenants[DefaultTenant].Queued != 1 {
		t.Fatalf("queued counter=%d, want 1", snap.Tenants[DefaultTenant].Queued)
	}
	// The queued admission recorded a wait in some histogram bucket.
	total := uint64(0)
	for _, v := range snap.Tenants[DefaultTenant].QueueWaitHist {
		total += v
	}
	if total != 2 { // one fast-path (<1ms), one queued
		t.Fatalf("wait histogram total=%d, want 2", total)
	}
}

func TestTenantConcurrencyQuota(t *testing.T) {
	c := New(Config{MaxConcurrent: 8, MaxQueue: 1, MaxQueueWait: 50 * time.Millisecond,
		Tenants: map[string]Quota{"small": {MaxConcurrent: 1}}})
	g1, err := c.Admit(context.Background(), Request{Tenant: "small"})
	if err != nil {
		t.Fatal(err)
	}
	// Other tenants are unaffected by small's quota.
	g3, err := c.Admit(context.Background(), Request{Tenant: "big"})
	if err != nil {
		t.Fatalf("other tenant blocked by small's quota: %v", err)
	}
	g3.Release()
	// A second "small" request queues, then sheds at the wait bound.
	_, err = c.Admit(context.Background(), Request{Tenant: "small"})
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("want *ShedError from wait bound, got %v", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("shed error carries no Retry-After: %+v", se)
	}
	g1.Release()
}

func TestQueueFullShedsLowestPriority(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 1, MaxQueueWait: time.Minute})
	g, err := c.Admit(context.Background(), Request{Class: ClassAnalytics})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the one queue slot with an analytics waiter.
	analyticsErr := make(chan error, 1)
	go func() {
		ga, err := c.Admit(context.Background(), Request{Class: ClassAnalytics})
		if err == nil {
			ga.Release()
		}
		analyticsErr <- err
	}()
	waitQueueDepth(t, c, 1)

	// A second analytics request sheds ITSELF (nothing waiting ranks below).
	_, err = c.Admit(context.Background(), Request{Class: ClassAnalytics})
	var se *ShedError
	if !errors.As(err, &se) || se.Class != ClassAnalytics {
		t.Fatalf("want analytics ShedError, got %v", err)
	}

	// An interactive request displaces the queued analytics waiter.
	interactiveErr := make(chan error, 1)
	go func() {
		gi, err := c.Admit(context.Background(), Request{Class: ClassInteractive})
		if err == nil {
			gi.Release()
		}
		interactiveErr <- err
	}()
	if err := <-analyticsErr; !errors.As(err, &se) {
		t.Fatalf("queued analytics should be displaced with ShedError, got %v", err)
	}
	g.Release() // admits the interactive waiter
	if err := <-interactiveErr; err != nil {
		t.Fatalf("interactive waiter: %v", err)
	}
}

func TestInteractiveAdmitsBeforeQueuedAnalytics(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 10, MaxQueueWait: time.Minute})
	g, err := c.Admit(context.Background(), Request{Class: ClassAnalytics})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	record := func(kind string) {
		mu.Lock()
		order = append(order, kind)
		mu.Unlock()
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		ga, err := c.Admit(context.Background(), Request{Class: ClassAnalytics})
		if err != nil {
			t.Errorf("analytics admit: %v", err)
			return
		}
		record("analytics")
		ga.Release()
	}()
	waitQueueDepth(t, c, 1)
	go func() {
		defer wg.Done()
		gi, err := c.Admit(context.Background(), Request{Class: ClassInteractive})
		if err != nil {
			t.Errorf("interactive admit: %v", err)
			return
		}
		record("interactive")
		gi.Release()
	}()
	waitQueueDepth(t, c, 2)
	g.Release()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "interactive" {
		t.Fatalf("admission order %v: interactive must go first despite arriving later", order)
	}
}

func TestAdmitRespectsCallerContext(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueueWait: time.Minute})
	g, err := c.Admit(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, Request{})
		got <- err
	}()
	waitQueueDepth(t, c, 1)
	cancel()
	if err := <-got; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	waitQueueDepth(t, c, 0)
	g.Release()
	// No residue: releasing the only grant leaves a clean controller.
	snap := c.Snapshot()
	if snap.Active != 0 || snap.QueueDepth != 0 || snap.Interactive != 0 {
		t.Fatalf("residual state after abandon: %+v", snap)
	}
}

func TestClassify(t *testing.T) {
	c := New(Config{InteractiveCutoff: 100})
	if got := c.Classify(100); got != ClassInteractive {
		t.Fatalf("at cutoff: %s", got)
	}
	if got := c.Classify(101); got != ClassAnalytics {
		t.Fatalf("above cutoff: %s", got)
	}
}

func TestGrantDeadline(t *testing.T) {
	c := New(Config{QueryDeadline: time.Minute})
	g, err := c.Admit(context.Background(), Request{Class: ClassInteractive})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	if g.Deadline().IsZero() {
		t.Fatal("query grant missing deadline")
	}
	gi, err := c.Admit(context.Background(), Request{Class: ClassIngest})
	if err != nil {
		t.Fatal(err)
	}
	defer gi.Release()
	if !gi.Deadline().IsZero() {
		t.Fatal("ingest grant must not carry a query deadline")
	}
}

func TestPace(t *testing.T) {
	c := New(Config{})
	// Nil grant: plain ctx probe.
	var g *Grant
	if err := g.Pace(context.Background()); err != nil {
		t.Fatalf("nil grant pace: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.Pace(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("nil grant pace on cancelled ctx: %v", err)
	}
	// Analytics grant under interactive pressure still honors ctx.
	ga, err := c.Admit(context.Background(), Request{Class: ClassAnalytics})
	if err != nil {
		t.Fatal(err)
	}
	gi, err := c.Admit(context.Background(), Request{Class: ClassInteractive})
	if err != nil {
		t.Fatal(err)
	}
	if err := ga.Pace(context.Background()); err != nil {
		t.Fatalf("pace under pressure: %v", err)
	}
	if err := ga.Pace(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pace must surface cancellation first: %v", err)
	}
	gi.Release()
	ga.Release()
}

func TestPaceFuncAndContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := TenantFrom(ctx); got != DefaultTenant {
		t.Fatalf("default tenant: %q", got)
	}
	ctx = WithTenant(ctx, "alice")
	if got := TenantFrom(ctx); got != "alice" {
		t.Fatalf("tenant: %q", got)
	}
	if g := GrantFrom(ctx); g != nil {
		t.Fatalf("unexpected grant: %v", g)
	}
	c := New(Config{})
	g, err := c.Admit(ctx, Request{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	ctx = WithGrant(ctx, g)
	if GrantFrom(ctx) != g {
		t.Fatal("grant did not round-trip through ctx")
	}
	pace := PaceFunc(ctx)
	if err := pace(ctx); err != nil {
		t.Fatalf("pace func: %v", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := pace(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pace func cancellation: %v", err)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"65536", 65536, false},
		{"1kb", 1000, false},
		{"1KiB", 1024, false},
		{"512MiB", 512 << 20, false},
		{"1.5GiB", 3 << 29, false},
		{"2GB", 2_000_000_000, false},
		{"64mb", 64_000_000, false},
		{"128B", 128, false},
		{"", 0, true},
		{"-1", 0, true},
		{"xMB", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseBytes(tc.in)
		if tc.err != (err != nil) {
			t.Fatalf("ParseBytes(%q) err=%v, want err=%v", tc.in, err, tc.err)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseBytes(%q)=%d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestParseTenantQuotas(t *testing.T) {
	q, err := ParseTenantQuotas("dash=16,64MiB,2e6; batch=2,256MiB,0")
	if err != nil {
		t.Fatal(err)
	}
	if got := q["dash"]; got != (Quota{MaxConcurrent: 16, MemBudget: 64 << 20, MaxCostSamples: 2_000_000}) {
		t.Fatalf("dash quota: %+v", got)
	}
	if got := q["batch"]; got != (Quota{MaxConcurrent: 2, MemBudget: 256 << 20}) {
		t.Fatalf("batch quota: %+v", got)
	}
	if q, err := ParseTenantQuotas(""); err != nil || q != nil {
		t.Fatalf("empty quotas: %v %v", q, err)
	}
	for _, bad := range []string{"noequals", "a=1,2", "a=1,2,3,4", "a=-1,0,0", "a=1,zz,0", "a=1,0,-5", "a=1,0,0;a=2,0,0"} {
		if _, err := ParseTenantQuotas(bad); err == nil {
			t.Fatalf("ParseTenantQuotas(%q) should fail", bad)
		}
	}
}

// TestConcurrentAdmitRelease hammers the controller from many goroutines
// (run under -race in CI): counters must balance and nothing may leak.
func TestConcurrentAdmitRelease(t *testing.T) {
	c := New(Config{MaxConcurrent: 4, MemBudget: 1 << 20, MaxQueue: 64, MaxQueueWait: 5 * time.Second,
		Tenants: map[string]Quota{"t1": {MaxConcurrent: 2}, "t2": {MemBudget: 256 << 10}}})
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%3)
			class := ClassInteractive
			if i%2 == 0 {
				class = ClassAnalytics
			}
			for j := 0; j < 50; j++ {
				g, err := c.Admit(context.Background(), Request{Tenant: tenant, Class: class, EstMem: 1 << 10})
				if err != nil {
					var se *ShedError
					if !errors.As(err, &se) {
						t.Errorf("unexpected admit error: %v", err)
						return
					}
					shed.Add(1)
					continue
				}
				admitted.Add(1)
				_ = g.Pace(context.Background())
				g.Release()
			}
		}(i)
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.Active != 0 || snap.ActiveMemBytes != 0 || snap.QueueDepth != 0 || snap.Interactive != 0 {
		t.Fatalf("residual state: %+v", snap)
	}
	var totAdmitted, totShed uint64
	for _, ts := range snap.Tenants {
		totAdmitted += ts.Admitted
		totShed += ts.Shed
		if ts.Active != 0 || ts.ActiveMemBytes != 0 {
			t.Fatalf("tenant residue: %+v", ts)
		}
	}
	if int64(totAdmitted) != admitted.Load() || int64(totShed) != shed.Load() {
		t.Fatalf("counter mismatch: snap %d/%d vs local %d/%d", totAdmitted, totShed, admitted.Load(), shed.Load())
	}
	if admitted.Load()+shed.Load() != 16*50 {
		t.Fatalf("requests unaccounted for: %d admitted + %d shed != 800", admitted.Load(), shed.Load())
	}
}

func waitQueueDepth(t *testing.T, c *Controller, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for c.Snapshot().QueueDepth != want {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth never reached %d (now %d)", want, c.Snapshot().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
