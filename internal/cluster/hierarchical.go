package cluster

import (
	"fmt"
	"math"
)

// Linkage selects how inter-cluster distance is computed during
// agglomerative clustering.
type Linkage string

// Supported linkages.
const (
	// LinkageSingle merges by minimum pairwise distance (chains).
	LinkageSingle Linkage = "single"
	// LinkageComplete merges by maximum pairwise distance (compact).
	LinkageComplete Linkage = "complete"
	// LinkageAverage merges by mean pairwise distance (UPGMA).
	LinkageAverage Linkage = "average"
)

// Dendrogram records an agglomerative clustering as a merge sequence.
// Leaves are numbered 0..n-1; internal node i (0-based) created by
// Merges[i] has id n+i.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Merge is one agglomeration step.
type Merge struct {
	A, B     int     // node ids merged (leaf < N, internal >= N)
	Distance float64 // linkage distance at which they merged
	Size     int     // size of the resulting cluster
}

// Agglomerative builds a full dendrogram from a symmetric distance matrix
// using the Lance-Williams update for the chosen linkage. It is O(n^3)
// worst case with O(n^2) memory — fine for VAP's population sizes
// (hundreds of customers).
func Agglomerative(dist [][]float64, linkage Linkage) (*Dendrogram, error) {
	n := len(dist)
	if n == 0 {
		return nil, ErrInput
	}
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("cluster: distance row %d has %d cols, want %d", i, len(dist[i]), n)
		}
	}
	switch linkage {
	case LinkageSingle, LinkageComplete, LinkageAverage:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %q", linkage)
	}
	// Working copy; d[i][j] holds the current inter-cluster distance.
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dist[i]...)
	}
	active := make([]bool, n)
	size := make([]int, n)
	nodeID := make([]int, n) // current dendrogram id of slot i
	for i := range active {
		active[i] = true
		size[i] = 1
		nodeID[i] = i
	}
	dg := &Dendrogram{N: n}
	for step := 0; step < n-1; step++ {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if d[i][j] < best {
					bi, bj, best = i, j, d[i][j]
				}
			}
		}
		if bi < 0 {
			break
		}
		// Merge bj into bi; bi becomes the new cluster slot.
		newSize := size[bi] + size[bj]
		dg.Merges = append(dg.Merges, Merge{
			A: nodeID[bi], B: nodeID[bj], Distance: best, Size: newSize,
		})
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			var nd float64
			switch linkage {
			case LinkageSingle:
				nd = math.Min(d[bi][k], d[bj][k])
			case LinkageComplete:
				nd = math.Max(d[bi][k], d[bj][k])
			case LinkageAverage:
				nd = (float64(size[bi])*d[bi][k] + float64(size[bj])*d[bj][k]) / float64(newSize)
			}
			d[bi][k] = nd
			d[k][bi] = nd
		}
		size[bi] = newSize
		active[bj] = false
		nodeID[bi] = n + step
	}
	return dg, nil
}

// Cut flattens the dendrogram into exactly k clusters by undoing the last
// k-1 merges, returning a label per leaf (labels are 0..k-1, assigned in
// first-appearance order).
func (d *Dendrogram) Cut(k int) ([]int, error) {
	if k < 1 || k > d.N {
		return nil, fmt.Errorf("cluster: cut k=%d out of range [1, %d]", k, d.N)
	}
	// Union-find over the first N-k merges.
	parent := make([]int, d.N+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	applied := d.N - k
	if applied > len(d.Merges) {
		applied = len(d.Merges)
	}
	for i := 0; i < applied; i++ {
		m := d.Merges[i]
		node := d.N + i
		parent[find(m.A)] = node
		parent[find(m.B)] = node
	}
	labels := make([]int, d.N)
	next := 0
	name := map[int]int{}
	for leaf := 0; leaf < d.N; leaf++ {
		root := find(leaf)
		id, ok := name[root]
		if !ok {
			id = next
			next++
			name[root] = id
		}
		labels[leaf] = id
	}
	return labels, nil
}

// CutByDistance flattens at a distance threshold: merges with
// Distance <= threshold are applied.
func (d *Dendrogram) CutByDistance(threshold float64) []int {
	parent := make([]int, d.N+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, m := range d.Merges {
		if m.Distance > threshold {
			break // merges are non-decreasing in distance for these linkages
		}
		node := d.N + i
		parent[find(m.A)] = node
		parent[find(m.B)] = node
	}
	labels := make([]int, d.N)
	next := 0
	name := map[int]int{}
	for leaf := 0; leaf < d.N; leaf++ {
		root := find(leaf)
		id, ok := name[root]
		if !ok {
			id = next
			next++
			name[root] = id
		}
		labels[leaf] = id
	}
	return labels
}
