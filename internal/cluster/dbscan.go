package cluster

import (
	"fmt"
)

// Noise is the DBSCAN label for points assigned to no cluster.
const Noise = -1

// DBSCANConfig tunes density-based clustering over a precomputed distance
// matrix (so it composes with the Pearson distance exactly like the
// embedding views do).
type DBSCANConfig struct {
	Eps    float64 // neighborhood radius in distance units
	MinPts int     // minimum neighborhood size (including the point itself)
}

// DBSCAN clusters by density reachability (Ester et al. 1996). It returns
// one label per point; Noise (-1) marks outliers — useful for surfacing
// the paper's "suspicious" customers, which scatter away from every
// cluster under trend-based distances.
func DBSCAN(dist [][]float64, cfg DBSCANConfig) ([]int, error) {
	n := len(dist)
	if n == 0 {
		return nil, ErrInput
	}
	for i := range dist {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("cluster: distance row %d has %d cols, want %d", i, len(dist[i]), n)
		}
	}
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("cluster: eps must be positive, got %v", cfg.Eps)
	}
	if cfg.MinPts < 1 {
		return nil, fmt.Errorf("cluster: minPts must be >= 1, got %d", cfg.MinPts)
	}
	neighbors := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if dist[i][j] <= cfg.Eps {
				out = append(out, j) // includes i itself
			}
		}
		return out
	}
	const unvisited = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	cluster := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbors(i)
		if len(nb) < cfg.MinPts {
			labels[i] = Noise
			continue
		}
		labels[i] = cluster
		// Expand: BFS over the density-connected region.
		queue := append([]int(nil), nb...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if labels[j] == Noise {
				labels[j] = cluster // border point
			}
			if labels[j] != unvisited {
				continue
			}
			labels[j] = cluster
			jnb := neighbors(j)
			if len(jnb) >= cfg.MinPts {
				queue = append(queue, jnb...)
			}
		}
		cluster++
	}
	return labels, nil
}

// ClusterCount returns the number of non-noise clusters in a label slice.
func ClusterCount(labels []int) int {
	seen := map[int]bool{}
	for _, l := range labels {
		if l >= 0 {
			seen[l] = true
		}
	}
	return len(seen)
}

// NoiseCount returns the number of noise-labelled points.
func NoiseCount(labels []int) int {
	n := 0
	for _, l := range labels {
		if l == Noise {
			n++
		}
	}
	return n
}
