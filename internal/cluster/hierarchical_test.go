package cluster

import (
	"math"
	"testing"

	"vap/internal/stat"
)

// lineDist builds the distance matrix of 1-D positions.
func lineDist(pos []float64) [][]float64 {
	n := len(pos)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Abs(pos[i] - pos[j])
		}
	}
	return d
}

func TestAgglomerativeTwoGroups(t *testing.T) {
	pos := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	for _, link := range []Linkage{LinkageSingle, LinkageComplete, LinkageAverage} {
		dg, err := Agglomerative(lineDist(pos), link)
		if err != nil {
			t.Fatalf("%s: %v", link, err)
		}
		if len(dg.Merges) != 5 {
			t.Fatalf("%s: merges = %d, want 5", link, len(dg.Merges))
		}
		labels, err := dg.Cut(2)
		if err != nil {
			t.Fatal(err)
		}
		truth := []int{0, 0, 0, 1, 1, 1}
		ari, _ := stat.AdjustedRandIndex(labels, truth)
		if ari != 1 {
			t.Errorf("%s: cut(2) ARI = %v, labels %v", link, ari, labels)
		}
	}
}

func TestAgglomerativeMergeDistancesMonotone(t *testing.T) {
	pos := []float64{0, 1, 3, 7, 15, 31}
	for _, link := range []Linkage{LinkageSingle, LinkageComplete, LinkageAverage} {
		dg, err := Agglomerative(lineDist(pos), link)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(dg.Merges); i++ {
			if dg.Merges[i].Distance < dg.Merges[i-1].Distance-1e-12 {
				t.Errorf("%s: merge distance decreased at %d", link, i)
			}
		}
		// The final merge contains all points.
		if dg.Merges[len(dg.Merges)-1].Size != len(pos) {
			t.Errorf("%s: final size = %d", link, dg.Merges[len(dg.Merges)-1].Size)
		}
	}
}

func TestSingleVsCompleteOnChain(t *testing.T) {
	// A chain 0-1-2-3-4 with unit gaps and one big jump to a pair.
	pos := []float64{0, 1, 2, 3, 4, 100, 101}
	single, _ := Agglomerative(lineDist(pos), LinkageSingle)
	complete, _ := Agglomerative(lineDist(pos), LinkageComplete)
	sl, _ := single.Cut(2)
	cl, _ := complete.Cut(2)
	truth := []int{0, 0, 0, 0, 0, 1, 1}
	sARI, _ := stat.AdjustedRandIndex(sl, truth)
	cARI, _ := stat.AdjustedRandIndex(cl, truth)
	// Single linkage must chain the run perfectly; complete linkage also
	// separates the far pair here.
	if sARI != 1 {
		t.Errorf("single cut = %v", sl)
	}
	if cARI != 1 {
		t.Errorf("complete cut = %v", cl)
	}
}

func TestCutExtremes(t *testing.T) {
	pos := []float64{0, 1, 2, 3}
	dg, _ := Agglomerative(lineDist(pos), LinkageAverage)
	one, err := dg.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range one {
		if l != 0 {
			t.Fatalf("cut(1) = %v", one)
		}
	}
	all, err := dg.Cut(4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range all {
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Fatalf("cut(n) = %v", all)
	}
	if _, err := dg.Cut(0); err == nil {
		t.Error("cut(0) should fail")
	}
	if _, err := dg.Cut(5); err == nil {
		t.Error("cut(n+1) should fail")
	}
}

func TestCutByDistance(t *testing.T) {
	pos := []float64{0, 0.5, 10, 10.5}
	dg, _ := Agglomerative(lineDist(pos), LinkageSingle)
	labels := dg.CutByDistance(1.0)
	truth := []int{0, 0, 1, 1}
	ari, _ := stat.AdjustedRandIndex(labels, truth)
	if ari != 1 {
		t.Errorf("distance cut = %v", labels)
	}
	// Threshold above the max merge distance: one cluster.
	all := dg.CutByDistance(1e9)
	for _, l := range all {
		if l != all[0] {
			t.Errorf("full threshold should give one cluster: %v", all)
		}
	}
	// Threshold below everything: all singletons.
	none := dg.CutByDistance(0.1)
	seen := map[int]bool{}
	for _, l := range none {
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Errorf("zero threshold should give singletons: %v", none)
	}
}

func TestAgglomerativeErrors(t *testing.T) {
	if _, err := Agglomerative(nil, LinkageSingle); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Agglomerative([][]float64{{0, 1}}, LinkageSingle); err == nil {
		t.Error("ragged should fail")
	}
	if _, err := Agglomerative(lineDist([]float64{1, 2}), "ward"); err == nil {
		t.Error("unknown linkage should fail")
	}
}

func TestDBSCANTwoBlobsAndNoise(t *testing.T) {
	pos := []float64{0, 0.1, 0.2, 0.3, 10, 10.1, 10.2, 10.3, 500}
	labels, err := DBSCAN(lineDist(pos), DBSCANConfig{Eps: 0.5, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ClusterCount(labels) != 2 {
		t.Fatalf("clusters = %d, labels %v", ClusterCount(labels), labels)
	}
	if labels[8] != Noise {
		t.Errorf("outlier labelled %d, want noise", labels[8])
	}
	if NoiseCount(labels) != 1 {
		t.Errorf("noise count = %d", NoiseCount(labels))
	}
	// Cluster membership is consistent within blobs.
	if labels[0] != labels[3] || labels[4] != labels[7] || labels[0] == labels[4] {
		t.Errorf("labels = %v", labels)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	pos := []float64{0, 100, 200, 300}
	labels, err := DBSCAN(lineDist(pos), DBSCANConfig{Eps: 1, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if NoiseCount(labels) != 4 {
		t.Errorf("labels = %v, want all noise", labels)
	}
}

func TestDBSCANBorderPoint(t *testing.T) {
	// A point within eps of a core point but itself not core joins the
	// cluster as a border point.
	pos := []float64{0, 0.4, 0.8, 1.6}
	labels, err := DBSCAN(lineDist(pos), DBSCANConfig{Eps: 0.9, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if labels[3] == Noise && labels[2] != Noise {
		// index 3 is within 0.9 of index 2; if 2 is in a cluster, 3 should
		// be reachable only if 2 is core — verify consistent semantics.
		nb := 0
		for _, p := range pos {
			if math.Abs(p-pos[2]) <= 0.9 {
				nb++
			}
		}
		if nb >= 3 {
			t.Errorf("border point excluded despite core neighbor: %v", labels)
		}
	}
}

func TestDBSCANErrors(t *testing.T) {
	d := lineDist([]float64{1, 2})
	if _, err := DBSCAN(nil, DBSCANConfig{Eps: 1, MinPts: 1}); err == nil {
		t.Error("empty should fail")
	}
	if _, err := DBSCAN(d, DBSCANConfig{Eps: 0, MinPts: 1}); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := DBSCAN(d, DBSCANConfig{Eps: 1, MinPts: 0}); err == nil {
		t.Error("minPts=0 should fail")
	}
}
