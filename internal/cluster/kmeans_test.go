package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vap/internal/stat"
)

// blobs generates k gaussian blobs of m points each in dim dimensions.
func blobs(k, m, dim int, sep float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	var rows [][]float64
	var labels []int
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = float64(c) * sep * float64(j%2*2-1)
		}
		center[0] = float64(c) * sep
		for i := 0; i < m; i++ {
			row := make([]float64, dim)
			for j := range row {
				row[j] = center[j] + rng.NormFloat64()*0.3
			}
			rows = append(rows, row)
			labels = append(labels, c)
		}
	}
	return rows, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rows, truth := blobs(4, 30, 6, 5, 1)
	res, err := KMeans(rows, KMeansConfig{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ari, err := stat.AdjustedRandIndex(res.Labels, truth)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.99 {
		t.Errorf("ARI on separated blobs = %v, want ~1", ari)
	}
	if len(res.Centroids) != 4 {
		t.Errorf("centroids = %d", len(res.Centroids))
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rows, _ := blobs(3, 25, 4, 4, 3)
	curve, err := ElbowCurve(rows, 6, KMeansConfig{Seed: 1, Restarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 6 {
		t.Fatalf("curve length = %d", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-9 {
			t.Errorf("inertia increased at k=%d: %v -> %v", i+1, curve[i-1], curve[i])
		}
	}
}

func TestKMeansK1(t *testing.T) {
	rows, _ := blobs(2, 10, 3, 3, 5)
	res, err := KMeans(rows, KMeansConfig{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("k=1 must label everything 0")
		}
	}
	// Centroid is the mean of all rows.
	for j := range res.Centroids[0] {
		mean := 0.0
		for _, r := range rows {
			mean += r[j]
		}
		mean /= float64(len(rows))
		if math.Abs(res.Centroids[0][j]-mean) > 1e-9 {
			t.Fatalf("k=1 centroid[%d] = %v, want %v", j, res.Centroids[0][j], mean)
		}
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	rows, _ := blobs(1, 8, 3, 1, 7)
	res, err := KMeans(rows, KMeansConfig{K: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every point its own cluster: inertia ~0.
	if res.Inertia > 1e-9 {
		t.Errorf("k=n inertia = %v, want 0", res.Inertia)
	}
}

func TestKMeansErrors(t *testing.T) {
	rows, _ := blobs(1, 5, 2, 1, 1)
	if _, err := KMeans(nil, KMeansConfig{K: 2}); err == nil {
		t.Error("empty should fail")
	}
	if _, err := KMeans(rows, KMeansConfig{K: 0}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KMeans(rows, KMeansConfig{K: 99}); err == nil {
		t.Error("k>n should fail")
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, KMeansConfig{K: 1}); err == nil {
		t.Error("ragged should fail")
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	rows, _ := blobs(3, 20, 4, 4, 11)
	a, _ := KMeans(rows, KMeansConfig{K: 3, Seed: 9})
	b, _ := KMeans(rows, KMeansConfig{K: 3, Seed: 9})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("nondeterministic labels for fixed seed")
		}
	}
}

func TestKMeansNormalizeZSeparatesShapeNotScale(t *testing.T) {
	// Two shape groups, each spanning wildly different magnitudes. With
	// z-normalization k-means should group by shape.
	rng := rand.New(rand.NewSource(13))
	var rows [][]float64
	var truth []int
	for i := 0; i < 40; i++ {
		scale := math.Pow(10, float64(i%4)) // 1..1000
		row := make([]float64, 24)
		g := i % 2
		for j := range row {
			x := float64(j) / 24 * 2 * math.Pi
			if g == 0 {
				row[j] = scale * (2 + math.Sin(x) + rng.NormFloat64()*0.05)
			} else {
				row[j] = scale * (2 + math.Cos(x) + rng.NormFloat64()*0.05)
			}
		}
		rows = append(rows, row)
		truth = append(truth, g)
	}
	res, err := KMeans(rows, KMeansConfig{K: 2, Seed: 3, NormalizeZ: true})
	if err != nil {
		t.Fatal(err)
	}
	ari, _ := stat.AdjustedRandIndex(res.Labels, truth)
	if ari < 0.95 {
		t.Errorf("shape ARI with z-norm = %v, want ~1", ari)
	}
}

func TestKMeansLabelsInRangeProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + int(rng.Int31n(40))
		k := int(kRaw)%5 + 1
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		res, err := KMeans(rows, KMeansConfig{K: k, Seed: seed, Restarts: 2, MaxIter: 20})
		if err != nil {
			return false
		}
		if len(res.Labels) != n {
			return false
		}
		for _, l := range res.Labels {
			if l < 0 || l >= k {
				return false
			}
		}
		return res.Inertia >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
