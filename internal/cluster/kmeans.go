// Package cluster implements the k-means baseline VAP's demo scenario S1
// (step 4) runs against visual pattern discovery: k-means++ seeding, Lloyd
// iterations, multiple restarts, and an elbow/inertia report.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrInput flags invalid clustering input.
var ErrInput = errors.New("cluster: invalid input")

// KMeansConfig tunes the solver.
type KMeansConfig struct {
	K          int
	MaxIter    int // default 100
	Restarts   int // default 10; best inertia wins
	Seed       int64
	Tolerance  float64 // centroid movement threshold, default 1e-6
	NormalizeZ bool    // z-normalize each row first (shape, not magnitude)
}

func (c *KMeansConfig) defaults() {
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Restarts <= 0 {
		c.Restarts = 10
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
}

// KMeansResult holds the best clustering over all restarts.
type KMeansResult struct {
	Labels    []int
	Centroids [][]float64
	Inertia   float64 // sum of squared distances to assigned centroids
	Iters     int     // iterations of the winning restart
}

// KMeans clusters rows into cfg.K groups.
func KMeans(rows [][]float64, cfg KMeansConfig) (*KMeansResult, error) {
	n := len(rows)
	if n == 0 {
		return nil, ErrInput
	}
	dim := len(rows[0])
	for i, r := range rows {
		if len(r) != dim || dim == 0 {
			return nil, fmt.Errorf("cluster: row %d has %d cols, want %d nonzero", i, len(r), dim)
		}
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1, %d]", cfg.K, n)
	}
	cfg.defaults()
	data := rows
	if cfg.NormalizeZ {
		data = make([][]float64, n)
		for i, r := range rows {
			data[i] = znorm(r)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var best *KMeansResult
	for r := 0; r < cfg.Restarts; r++ {
		res := lloyd(data, cfg, rng)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func znorm(r []float64) []float64 {
	mu := 0.0
	for _, v := range r {
		mu += v
	}
	mu /= float64(len(r))
	sd := 0.0
	for _, v := range r {
		d := v - mu
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(r)))
	out := make([]float64, len(r))
	if sd == 0 {
		return out
	}
	for i, v := range r {
		out[i] = (v - mu) / sd
	}
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// seedPlusPlus picks initial centroids with k-means++ (Arthur &
// Vassilvitskii 2007): each next centroid is sampled proportionally to its
// squared distance from the nearest chosen centroid.
func seedPlusPlus(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(data)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, clone(data[first]))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = sqDist(data[i], centroids[0])
	}
	for len(centroids) < k {
		total := 0.0
		for _, v := range d2 {
			total += v
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(n) // all points coincide with centroids
		} else {
			target := rng.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, v := range d2 {
				acc += v
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := clone(data[idx])
		centroids = append(centroids, c)
		for i := range d2 {
			if d := sqDist(data[i], c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

func clone(r []float64) []float64 {
	out := make([]float64, len(r))
	copy(out, r)
	return out
}

func lloyd(data [][]float64, cfg KMeansConfig, rng *rand.Rand) *KMeansResult {
	n := len(data)
	dim := len(data[0])
	centroids := seedPlusPlus(data, cfg.K, rng)
	labels := make([]int, n)
	counts := make([]int, cfg.K)
	sums := make([][]float64, cfg.K)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	var inertia float64
	iters := 0
	for iter := 0; iter < cfg.MaxIter; iter++ {
		iters = iter + 1
		// Assignment.
		inertia = 0
		for i, r := range data {
			bestK, bestD := 0, math.Inf(1)
			for k, c := range centroids {
				if d := sqDist(r, c); d < bestD {
					bestK, bestD = k, d
				}
			}
			labels[i] = bestK
			inertia += bestD
		}
		// Update.
		for k := range sums {
			counts[k] = 0
			for j := range sums[k] {
				sums[k][j] = 0
			}
		}
		for i, r := range data {
			k := labels[i]
			counts[k]++
			for j, v := range r {
				sums[k][j] += v
			}
		}
		moved := 0.0
		for k := range centroids {
			if counts[k] == 0 {
				// Re-seed empty cluster at the point farthest from its
				// centroid to avoid dead clusters.
				far, farD := 0, -1.0
				for i, r := range data {
					if d := sqDist(r, centroids[labels[i]]); d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[k], data[far])
				moved += 1
				continue
			}
			for j := range centroids[k] {
				nv := sums[k][j] / float64(counts[k])
				d := nv - centroids[k][j]
				moved += d * d
				centroids[k][j] = nv
			}
		}
		if math.Sqrt(moved) < cfg.Tolerance {
			break
		}
	}
	// Final assignment pass so labels match the final centroids.
	inertia = 0
	for i, r := range data {
		bestK, bestD := 0, math.Inf(1)
		for k, c := range centroids {
			if d := sqDist(r, c); d < bestD {
				bestK, bestD = k, d
			}
		}
		labels[i] = bestK
		inertia += bestD
	}
	return &KMeansResult{
		Labels:    append([]int(nil), labels...),
		Centroids: centroids,
		Inertia:   inertia,
		Iters:     iters,
	}
}

// ElbowCurve returns the best inertia for each k in [1, maxK], the standard
// diagnostic for choosing k in the baseline comparison.
func ElbowCurve(rows [][]float64, maxK int, cfg KMeansConfig) ([]float64, error) {
	if maxK < 1 {
		return nil, ErrInput
	}
	out := make([]float64, 0, maxK)
	for k := 1; k <= maxK && k <= len(rows); k++ {
		c := cfg
		c.K = k
		res, err := KMeans(rows, c)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Inertia)
	}
	return out, nil
}
