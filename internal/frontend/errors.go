package frontend

import (
	"context"
	"errors"
	"net/http"
	"time"

	"vap/internal/govern"
	"vap/internal/vql"
)

// Kind classifies one statement failure for every transport. The HTTP
// codec and the MySQL wire server both consume the same MapError output,
// so a given error kind can never map to (say) 422 over HTTP but an
// overload errno over the wire.
type Kind string

const (
	// KindParse: the statement is malformed or mistyped; carries a
	// 1-based source position. HTTP 400 / MySQL ER_PARSE_ERROR.
	KindParse Kind = "parse"
	// KindBadRequest: a well-formed request the core refuses (empty
	// statement, bad session variable). HTTP 400 / ER_EMPTY_QUERY or
	// ER_WRONG_ARGUMENTS.
	KindBadRequest Kind = "bad_request"
	// KindCost: the governance cost ceiling rejected the query up front;
	// retrying unchanged can never succeed. HTTP 422 / ER_SIGNAL_EXCEPTION.
	KindCost Kind = "cost"
	// KindShed: overload shed the request; carries a Retry-After hint.
	// HTTP 429 / ER_OUT_OF_RESOURCES.
	KindShed Kind = "shed"
	// KindTimeout: the statement deadline or the caller's context fired
	// mid-execution. HTTP 504 / ER_QUERY_TIMEOUT.
	KindTimeout Kind = "timeout"
	// KindInternal: everything else (store corruption, executor faults).
	// HTTP 500 / ER_UNKNOWN_ERROR.
	KindInternal Kind = "internal"
)

// Kinds enumerates every statement-error kind MapError can return, in a
// fixed order — the parity test iterates it so a new kind cannot be added
// without extending both transports' expectations.
var Kinds = []Kind{KindParse, KindBadRequest, KindCost, KindShed, KindTimeout, KindInternal}

// MySQL protocol error numbers and SQL states the wire server emits.
// Values are the standard server errnos clients already know how to
// render and retry on.
const (
	MyErrParse      uint16 = 1064 // ER_PARSE_ERROR
	MyErrEmptyQuery uint16 = 1065 // ER_EMPTY_QUERY
	MyErrCost       uint16 = 1644 // ER_SIGNAL_EXCEPTION (user-raised condition)
	MyErrShed       uint16 = 1041 // ER_OUT_OF_RESOURCES
	MyErrTimeout    uint16 = 3024 // ER_QUERY_TIMEOUT
	MyErrInternal   uint16 = 1105 // ER_UNKNOWN_ERROR
	MyErrAccess     uint16 = 1045 // ER_ACCESS_DENIED_ERROR
	MyErrConnCount  uint16 = 1040 // ER_CON_COUNT_ERROR
	MyErrUnknownCom uint16 = 1047 // ER_UNKNOWN_COM_ERROR
	MyErrUnknownDB  uint16 = 1049 // ER_BAD_DB_ERROR
	MyErrShutdown   uint16 = 1053 // ER_SERVER_SHUTDOWN
	MyErrMalformed  uint16 = 1835 // ER_MALFORMED_PACKET
)

// Info is one classified statement error: the shared taxonomy plus the
// transport encodings (HTTP status, MySQL errno + SQLSTATE) and the typed
// details each codec renders (parse position, governance fields,
// Retry-After hint).
type Info struct {
	Kind       Kind
	HTTPStatus int
	MyErrno    uint16
	SQLState   string
	Msg        string

	// Line/Col are the 1-based parse position (0 = not a parse error).
	Line, Col int
	// RetryAfter is the shed hint (0 unless Kind == KindShed).
	RetryAfter time.Duration
	// Cost / Shed retain the typed governance rejection for codecs that
	// render its individual fields (est samples, ceilings, tenant).
	Cost *govern.CostError
	Shed *govern.ShedError
}

// Error is the frontend's own typed statement error for faults that are
// neither parse nor governance errors (empty statement, bad session
// variable). MyErrno 0 selects the kind's default errno.
type Error struct {
	Kind    Kind
	Msg     string
	MyErrno uint16
}

func (e *Error) Error() string { return e.Msg }

// MapError classifies err into the shared error taxonomy. It is the ONE
// place the error→status tables live: the HTTP codec renders
// Info.HTTPStatus and the wire server encodes Info.MyErrno/SQLState, so
// the two transports classify every error kind identically by
// construction.
func MapError(err error) Info {
	var ce *govern.CostError
	var se *govern.ShedError
	var ve *vql.Error
	var fe *Error
	switch {
	case errors.As(err, &ce):
		return Info{
			Kind: KindCost, HTTPStatus: http.StatusUnprocessableEntity,
			MyErrno: MyErrCost, SQLState: "45000",
			Msg: ce.Error(), Cost: ce,
		}
	case errors.As(err, &se):
		ra := se.RetryAfter.Round(time.Second)
		if ra < time.Second {
			ra = time.Second
		}
		return Info{
			Kind: KindShed, HTTPStatus: http.StatusTooManyRequests,
			MyErrno: MyErrShed, SQLState: "HY000",
			Msg: se.Error(), Shed: se, RetryAfter: ra,
		}
	case errors.As(err, &ve):
		return Info{
			Kind: KindParse, HTTPStatus: http.StatusBadRequest,
			MyErrno: MyErrParse, SQLState: "42000",
			Msg: ve.Error(), Line: ve.Pos.Line, Col: ve.Pos.Col,
		}
	case errors.As(err, &fe):
		info := Info{
			Kind: KindBadRequest, HTTPStatus: http.StatusBadRequest,
			MyErrno: fe.MyErrno, SQLState: "42000", Msg: fe.Msg,
		}
		if info.MyErrno == 0 {
			info.MyErrno = MyErrEmptyQuery
		}
		if fe.Kind != "" {
			info.Kind = fe.Kind
		}
		return info
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return Info{
			Kind: KindTimeout, HTTPStatus: http.StatusGatewayTimeout,
			MyErrno: MyErrTimeout, SQLState: "HY000", Msg: err.Error(),
		}
	default:
		return Info{
			Kind: KindInternal, HTTPStatus: http.StatusInternalServerError,
			MyErrno: MyErrInternal, SQLState: "HY000", Msg: err.Error(),
		}
	}
}
