package frontend

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"vap/internal/govern"
	"vap/internal/vql"
)

// TestMapErrorParity is the cross-transport parity table: one
// representative error per Kind, with the HTTP status AND the MySQL
// errno/SQLSTATE asserted together. Because both transports render from
// the same MapError output, this single table IS the contract that a
// cost rejection is 422 over HTTP exactly when it is errno 1644 over the
// wire, and so on for every kind.
func TestMapErrorParity(t *testing.T) {
	cases := []struct {
		kind     Kind
		err      error
		status   int
		errno    uint16
		sqlState string
	}{
		{
			kind:     KindParse,
			err:      &vql.Error{Msg: "unexpected token", Pos: vql.Pos{Line: 2, Col: 7}},
			status:   http.StatusBadRequest,
			errno:    MyErrParse,
			sqlState: "42000",
		},
		{
			kind:     KindBadRequest,
			err:      &Error{Kind: KindBadRequest, Msg: "frontend: empty statement", MyErrno: MyErrEmptyQuery},
			status:   http.StatusBadRequest,
			errno:    MyErrEmptyQuery,
			sqlState: "42000",
		},
		{
			kind:     KindCost,
			err:      &govern.CostError{Tenant: "batch", Est: 5e6, Ceiling: 2e6},
			status:   http.StatusUnprocessableEntity,
			errno:    MyErrCost,
			sqlState: "45000",
		},
		{
			kind:     KindShed,
			err:      &govern.ShedError{Tenant: "dash", Class: govern.ClassInteractive, Reason: "queue full", RetryAfter: 2 * time.Second},
			status:   http.StatusTooManyRequests,
			errno:    MyErrShed,
			sqlState: "HY000",
		},
		{
			kind:     KindTimeout,
			err:      fmt.Errorf("executing: %w", context.DeadlineExceeded),
			status:   http.StatusGatewayTimeout,
			errno:    MyErrTimeout,
			sqlState: "HY000",
		},
		{
			kind:     KindInternal,
			err:      errors.New("store: chunk checksum mismatch"),
			status:   http.StatusInternalServerError,
			errno:    MyErrInternal,
			sqlState: "HY000",
		},
	}

	// Every kind MapError can produce must appear in the table exactly
	// once — adding a new Kind without extending the parity expectations
	// fails here.
	seen := map[Kind]bool{}
	for _, c := range cases {
		if seen[c.kind] {
			t.Fatalf("kind %q appears twice in the parity table", c.kind)
		}
		seen[c.kind] = true
	}
	for _, k := range Kinds {
		if !seen[k] {
			t.Fatalf("kind %q missing from the parity table", k)
		}
	}
	if len(cases) != len(Kinds) {
		t.Fatalf("parity table has %d cases for %d kinds", len(cases), len(Kinds))
	}

	for _, c := range cases {
		t.Run(string(c.kind), func(t *testing.T) {
			info := MapError(c.err)
			if info.Kind != c.kind {
				t.Fatalf("Kind = %q, want %q", info.Kind, c.kind)
			}
			if info.HTTPStatus != c.status {
				t.Errorf("HTTPStatus = %d, want %d", info.HTTPStatus, c.status)
			}
			if info.MyErrno != c.errno {
				t.Errorf("MyErrno = %d, want %d", info.MyErrno, c.errno)
			}
			if info.SQLState != c.sqlState {
				t.Errorf("SQLState = %q, want %q", info.SQLState, c.sqlState)
			}
			if info.Msg == "" {
				t.Errorf("Msg is empty")
			}
		})
	}
}

func TestMapErrorDetails(t *testing.T) {
	info := MapError(&vql.Error{Msg: "bad", Pos: vql.Pos{Line: 3, Col: 11}})
	if info.Line != 3 || info.Col != 11 {
		t.Errorf("parse position = %d:%d, want 3:11", info.Line, info.Col)
	}

	ce := &govern.CostError{Tenant: "t", Est: 10, Ceiling: 5}
	if got := MapError(ce); got.Cost != ce {
		t.Errorf("Cost not retained on cost rejection")
	}

	se := &govern.ShedError{Tenant: "t", RetryAfter: 1700 * time.Millisecond}
	info = MapError(se)
	if info.Shed != se {
		t.Errorf("Shed not retained on shed rejection")
	}
	if info.RetryAfter != 2*time.Second {
		t.Errorf("RetryAfter = %v, want rounded 2s", info.RetryAfter)
	}
	// Sub-second hints round up to the 1s floor, never to zero.
	info = MapError(&govern.ShedError{RetryAfter: 80 * time.Millisecond})
	if info.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s floor", info.RetryAfter)
	}

	// Wrapped governance errors still classify (errors.As unwraps).
	info = MapError(fmt.Errorf("admission: %w", se))
	if info.Kind != KindShed {
		t.Errorf("wrapped shed classified as %q", info.Kind)
	}

	// A frontend.Error with an explicit kind and errno keeps both.
	info = MapError(&Error{Kind: KindBadRequest, Msg: "unknown db", MyErrno: MyErrUnknownDB})
	if info.MyErrno != MyErrUnknownDB {
		t.Errorf("explicit errno overridden: got %d", info.MyErrno)
	}
}

func TestSessionVariables(t *testing.T) {
	s := NewSession("dash").WithUser("alice")
	if s.Tenant() != "dash" || s.User() != "alice" {
		t.Fatalf("identity = %q/%q", s.Tenant(), s.User())
	}
	if err := s.Set("deadline", "250ms"); err != nil {
		t.Fatalf("set deadline: %v", err)
	}
	if s.Deadline() != 250*time.Millisecond {
		t.Errorf("deadline = %v", s.Deadline())
	}
	if err := s.Set("deadline", "0"); err != nil {
		t.Fatalf("clear deadline: %v", err)
	}
	if s.Deadline() != 0 {
		t.Errorf("deadline not cleared: %v", s.Deadline())
	}
	if err := s.Set("deadline", "-5s"); err == nil {
		t.Errorf("negative deadline accepted")
	}
	if err := s.Set("format", "table"); err != nil || s.Format() != "table" {
		t.Errorf("format = %q, err %v", s.Format(), err)
	}
	if err := s.Set("nope", "1"); err == nil {
		t.Errorf("unknown variable accepted")
	}
	if err := s.UseDB("VAP"); err != nil {
		t.Errorf("UseDB(VAP): %v", err)
	}
	if err := s.UseDB("other"); err == nil {
		t.Errorf("UseDB(other) accepted")
	} else if MapError(err).MyErrno != MyErrUnknownDB {
		t.Errorf("UseDB(other) errno = %d", MapError(err).MyErrno)
	}
	s.NextStmt()
	s.NextStmt()
	if s.Stmts() != 2 {
		t.Errorf("stmts = %d, want 2", s.Stmts())
	}
}
