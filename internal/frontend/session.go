package frontend

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DatabaseName is the single logical database every transport exposes
// (USE vap / a connection string's /vap path). The empty string is also
// accepted: VAP has exactly one schema.
const DatabaseName = "vap"

// Session is one client conversation with the query core, independent of
// the transport that carries it: the HTTP codec builds one per request
// from headers, the wire server keeps one per connection. It holds the
// authenticated tenant identity (which the governor's quotas and ceilings
// key on), the per-session variables, and a monotonic statement counter.
// Safe for concurrent use — the wire server's shutdown path may inspect a
// session while its command loop executes.
type Session struct {
	tenant string
	user   string

	mu       sync.Mutex
	db       string
	deadline time.Duration
	format   string

	stmts atomic.Uint64
}

// NewSession returns a session for tenant (empty = the default tenant).
func NewSession(tenant string) *Session {
	return &Session{tenant: tenant, db: DatabaseName, format: "json"}
}

// WithUser records the authenticated username (wire transport); the
// tenant, not the username, is the governance identity.
func (s *Session) WithUser(user string) *Session {
	s.user = user
	return s
}

// Tenant returns the session's governance identity.
func (s *Session) Tenant() string { return s.tenant }

// User returns the authenticated username ("" for transports without
// user auth).
func (s *Session) User() string { return s.user }

// UseDB switches the session's current database. VAP exposes exactly one
// logical database, so anything but "vap" (or "") is an error.
func (s *Session) UseDB(name string) error {
	if name != "" && !strings.EqualFold(name, DatabaseName) {
		return &Error{Kind: KindBadRequest, Msg: fmt.Sprintf("frontend: unknown database %q", name), MyErrno: MyErrUnknownDB}
	}
	s.mu.Lock()
	s.db = DatabaseName
	s.mu.Unlock()
	return nil
}

// DB returns the session's current database.
func (s *Session) DB() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db
}

// Set assigns one session variable. Recognized variables:
//
//   - "deadline": a Go duration ("500ms", "30s") bounding every following
//     statement; "0" clears it. Tightens — never widens — the transport's
//     own handler timeout.
//   - "format": "json" or "table", a rendering hint transports may use
//     for their own output (the wire protocol ignores it; HTTP may later
//     honor it).
//
// Unknown names are an error so a typo cannot silently do nothing.
func (s *Session) Set(name, value string) error {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "deadline":
		d, err := time.ParseDuration(strings.TrimSpace(value))
		if err != nil {
			if strings.TrimSpace(value) == "0" {
				d = 0
			} else {
				return &Error{Kind: KindBadRequest, Msg: fmt.Sprintf("frontend: bad deadline %q: %v", value, err)}
			}
		}
		if d < 0 {
			return &Error{Kind: KindBadRequest, Msg: fmt.Sprintf("frontend: negative deadline %q", value)}
		}
		s.mu.Lock()
		s.deadline = d
		s.mu.Unlock()
		return nil
	case "format":
		v := strings.ToLower(strings.TrimSpace(value))
		if v != "json" && v != "table" {
			return &Error{Kind: KindBadRequest, Msg: fmt.Sprintf("frontend: bad format %q (want json or table)", value)}
		}
		s.mu.Lock()
		s.format = v
		s.mu.Unlock()
		return nil
	default:
		return &Error{Kind: KindBadRequest, Msg: fmt.Sprintf("frontend: unknown session variable %q", name)}
	}
}

// Deadline returns the session's statement deadline (0 = none).
func (s *Session) Deadline() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadline
}

// Format returns the session's rendering hint.
func (s *Session) Format() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.format
}

// NextStmt increments and returns the session's statement counter
// (1-based). The wire server logs it; the counter also gives every
// statement a session-unique id for tracing.
func (s *Session) NextStmt() uint64 { return s.stmts.Add(1) }

// Stmts returns how many statements the session has executed.
func (s *Session) Stmts() uint64 { return s.stmts.Load() }
