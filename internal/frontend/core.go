// Package frontend is the protocol-agnostic front-door core: the full
// statement lifecycle (parse → plan → governance admission → execute →
// typed result → typed error taxonomy) extracted from the HTTP handlers
// so every transport — the JSON REST codec, the MySQL wire-protocol
// server, future gRPC — is a thin encoder over the same Core. Transports
// own only bytes-on-the-wire concerns; tenancy, deadlines, admission, and
// the error→status tables live here exactly once.
package frontend

import (
	"context"
	"strings"
	"time"

	"vap/internal/core"
	"vap/internal/govern"
	"vap/internal/vql"
)

// Result is the typed, transport-neutral outcome of one statement:
// column names and types plus a row iterator over already-typed cells
// (int64 | float64 | string | nil) — not pre-marshaled JSON. The HTTP
// codec JSON-encodes rows; the wire server renders the text protocol from
// the same cells, which is why the two transports return byte-identical
// values for the same statement.
type Result struct {
	*core.VQLOutput
}

// ColumnTypes returns the per-column cell types, aligned with Columns.
func (r *Result) ColumnTypes() []vql.ColType { return r.Types }

// EachRow streams the result rows in output order, stopping at the first
// error fn returns. Cells within a row are typed per ColumnTypes, with
// nil for null aggregate cells.
func (r *Result) EachRow(fn func(row []any) error) error {
	for _, row := range r.Rows {
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}

// Core owns the statement lifecycle over one analyzer. It is stateless
// across statements (sessions carry the per-client state), so one Core is
// shared by every transport and every connection.
type Core struct {
	an *core.Analyzer
}

// NewCore returns a query core over an analyzer.
func NewCore(an *core.Analyzer) *Core { return &Core{an: an} }

// Analyzer exposes the underlying analyzer for codecs that also serve
// non-statement endpoints (stats, ingest, views).
func (c *Core) Analyzer() *core.Analyzer { return c.an }

// Gov exposes the admission controller (the wire server's per-connection
// admission hook calls it before the first statement).
func (c *Core) Gov() *govern.Controller { return c.an.Gov() }

// Execute runs one statement for sess: it stamps the tenant for
// admission, applies the session's statement deadline (tightening, never
// widening, whatever bound ctx already carries), counts the statement,
// and delegates parse → plan → admission → execution to the analyzer.
// Every returned error classifies through MapError.
func (c *Core) Execute(ctx context.Context, sess *Session, src string) (*Result, error) {
	sess.NextStmt()
	if strings.TrimSpace(src) == "" {
		return nil, &Error{Kind: KindBadRequest, Msg: "frontend: empty statement", MyErrno: MyErrEmptyQuery}
	}
	ctx = govern.WithTenant(ctx, sess.Tenant())
	if d := sess.Deadline(); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	out, err := c.an.VQL(ctx, src)
	if err != nil {
		return nil, err
	}
	return &Result{VQLOutput: out}, nil
}

// ExecuteTimeout is Execute bounded by an overall transport timeout —
// the shared shape of "a handler/command gets at most d, sessions may
// tighten it".
func (c *Core) ExecuteTimeout(ctx context.Context, sess *Session, src string, d time.Duration) (*Result, error) {
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	return c.Execute(ctx, sess, src)
}
