// Benchmarks regenerating the performance-relevant piece of every
// experiment in EXPERIMENTS.md (the paper is a demo paper with no numeric
// tables; E1..E10 are the reproducible claims). Run with:
//
//	go test -bench=. -benchmem
//
// The full result tables (accuracy, sensitivity sweeps) come from
// cmd/vapbench; these benches measure the computational kernels.
package vap_test

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"vap"
	"vap/internal/cluster"
	"vap/internal/core"
	"vap/internal/gen"
	"vap/internal/govern"
	"vap/internal/kde"
	"vap/internal/query"
	"vap/internal/reduce"
	"vap/internal/store"
	"vap/internal/stream"
	"vap/internal/vql"
)

// benchData lazily builds one shared dataset + store for all benchmarks.
var benchData struct {
	once sync.Once
	ds   *gen.Dataset
	st   *store.Store
	an   *core.Analyzer
	rows [][]float64
	dist [][]float64
}

func setupBench(b *testing.B) {
	b.Helper()
	benchData.once.Do(func() {
		ds := gen.Generate(gen.Config{
			Seed: 42,
			Days: 90,
			Counts: map[gen.Pattern]int{
				gen.PatternBimodal:      60,
				gen.PatternEnergySaving: 50,
				gen.PatternIdle:         30,
				gen.PatternConstantHigh: 40,
				gen.PatternSuspicious:   20,
				gen.PatternEarlyBird:    30,
			},
		})
		st, err := store.Open(store.Options{})
		if err != nil {
			panic(err)
		}
		if err := ds.LoadInto(st); err != nil {
			panic(err)
		}
		an := core.NewAnalyzer(st)
		_, _, rows, err := an.Engine().MeterMatrix(query.Selection{}, query.GranDaily, query.AggMean)
		if err != nil {
			panic(err)
		}
		dist, err := reduce.DistanceMatrix(rows, reduce.MetricPearson)
		if err != nil {
			panic(err)
		}
		benchData.ds, benchData.st, benchData.an = ds, st, an
		benchData.rows, benchData.dist = rows, dist
	})
}

func benchNoon() int64 { return benchData.ds.Start.Unix() + 30*86400 + 12*3600 }

// BenchmarkPipelineEndToEnd is E1 (Figure 1): generate view C, brush,
// profile, and compute a shift map, per iteration. MDS keeps the loop
// tight enough to iterate; BenchmarkTSNE covers the heavy reducer.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	setupBench(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		// Drop memoized results so every iteration measures real compute,
		// not the exec-cache hit path (BenchmarkTypicalPatternsCached
		// covers that).
		benchData.an.Exec().Invalidate()
		view, err := benchData.an.TypicalPatterns(ctx, core.TypicalConfig{
			Seed: 1, Method: reduce.MethodMDS,
		})
		if err != nil {
			b.Fatal(err)
		}
		_, rows, err := view.SelectBrush(core.Brush{MaxX: 1, MaxY: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := view.Profile(rows); err != nil {
			b.Fatal(err)
		}
		noon := benchNoon()
		if _, err := benchData.an.ShiftPatterns(core.ShiftConfig{
			T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKDE and BenchmarkFlowMap are E2 (Figure 2). The Serial/Parallel
// pair tracks the row-band fan-out speedup of the grid evaluation.
func BenchmarkKDE(b *testing.B) {
	setupBench(b)
	noon := benchNoon()
	pts, err := benchData.an.Engine().DemandSnapshot(query.Selection{}, noon, noon+4*3600)
	if err != nil {
		b.Fatal(err)
	}
	wpts := make([]kde.WeightedPoint, len(pts))
	for i, p := range pts {
		wpts[i] = kde.WeightedPoint{Loc: p.Loc, Weight: p.Weight}
	}
	box := benchData.st.Catalog().Bounds().Buffer(0.002)
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kde.Estimate(wpts, box, kde.Config{Cols: 96, Rows: 96, Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kde.Estimate(wpts, box, kde.Config{Cols: 96, Rows: 96, Workers: runtime.NumCPU()}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkKDEExact(b *testing.B) {
	setupBench(b)
	noon := benchNoon()
	pts, _ := benchData.an.Engine().DemandSnapshot(query.Selection{}, noon, noon+4*3600)
	wpts := make([]kde.WeightedPoint, len(pts))
	for i, p := range pts {
		wpts[i] = kde.WeightedPoint{Loc: p.Loc, Weight: p.Weight}
	}
	box := benchData.st.Catalog().Bounds().Buffer(0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kde.Estimate(wpts, box, kde.Config{Cols: 96, Rows: 96, Exact: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlowMap(b *testing.B) {
	setupBench(b)
	noon := benchNoon()
	for i := 0; i < b.N; i++ {
		benchData.an.Exec().Invalidate() // measure compute, not cache hits
		if _, err := benchData.an.ShiftPatterns(core.ShiftConfig{
			T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTSNE / BenchmarkMDS / BenchmarkSMACOF / BenchmarkPCA are E3/E4
// (Figure 3, S1 step 3).
func BenchmarkTSNE(b *testing.B) {
	setupBench(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := reduce.TSNE(ctx, benchData.dist, reduce.TSNEConfig{Seed: 1, Iterations: 250}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMDS(b *testing.B) {
	setupBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := reduce.ClassicalMDS(benchData.dist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSMACOF(b *testing.B) {
	setupBench(b)
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := reduce.SMACOF(ctx, benchData.dist, reduce.SMACOFConfig{Seed: 1, Iterations: 60}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCA(b *testing.B) {
	setupBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := reduce.PCA(benchData.rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistanceMatrixPearson pairs the serial reference against the
// exec-layer parallel path so the speedup stays measurable in BENCH_*
// snapshots; on an N-core runner Parallel should approach N x Serial.
func BenchmarkDistanceMatrixPearson(b *testing.B) {
	setupBench(b)
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := reduce.DistanceMatrix(benchData.rows, reduce.MetricPearson); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := reduce.DistanceMatrixCtx(ctx, benchData.rows, reduce.MetricPearson, runtime.NumCPU()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTypicalPatternsCached measures the interactive steady state:
// the same view requested repeatedly on an unchanged store, i.e. what a
// brushing session pays per round-trip once the exec cache is warm.
func BenchmarkTypicalPatternsCached(b *testing.B) {
	setupBench(b)
	ctx := context.Background()
	cfg := core.TypicalConfig{Seed: 1, Method: reduce.MethodMDS}
	if _, err := benchData.an.TypicalPatterns(ctx, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchData.an.TypicalPatterns(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShiftPatternsCached is the flow-map analogue.
func BenchmarkShiftPatternsCached(b *testing.B) {
	setupBench(b)
	ctx := context.Background()
	noon := benchNoon()
	cfg := core.ShiftConfig{T1: noon, T2: noon + 8*3600, Granularity: query.Gran4Hourly}
	if _, err := benchData.an.ShiftPatternsCtx(ctx, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchData.an.ShiftPatternsCtx(ctx, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVQLEndToEnd measures the full VQL path — parse, compile,
// plan-lower, fan-out execution over the pushdown iterators — for a
// representative bucketed GROUP BY with ordering, both cold (cache
// invalidated per iteration, the analytic cost) and cached (the
// interactive steady state: parse + plan hash + memo hit).
func BenchmarkVQLEndToEnd(b *testing.B) {
	setupBench(b)
	ctx := context.Background()
	const q = `SELECT bucket(daily) AS day, mean(value) AS avg_kwh, count(*)
		FROM meters WHERE zone = 'residential'
		GROUP BY bucket(daily) ORDER BY avg_kwh DESC LIMIT 14`
	b.Run("Cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchData.an.Exec().Invalidate()
			if _, err := benchData.an.VQL(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Cached", func(b *testing.B) {
		if _, err := benchData.an.VQL(ctx, q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := benchData.an.VQL(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVQLExec pairs the retained scalar reference executor against
// the vectorized executor on the same compiled plan and resolved meter
// set (memoization bypassed on both sides) — the apples-to-apples
// measurement of the batch-execution speedup, robust to machine noise
// because both sides run under the same conditions.
func BenchmarkVQLExec(b *testing.B) {
	setupBench(b)
	ctx := context.Background()
	q, err := vql.Parse(`SELECT bucket(daily) AS day, mean(value) AS avg_kwh, count(*)
		FROM meters WHERE zone = 'residential'
		GROUP BY bucket(daily) ORDER BY avg_kwh DESC LIMIT 14`)
	if err != nil {
		b.Fatal(err)
	}
	p, err := vql.Compile(q)
	if err != nil {
		b.Fatal(err)
	}
	eng := benchData.an.Engine()
	ids, err := vql.ResolveScanMeters(eng, p)
	if err != nil {
		b.Fatal(err)
	}
	from, to, ok := p.ResolveWindow(eng.Store())
	run := func(b *testing.B, execFn func(context.Context, *query.Engine, *vql.Plan, []int64, int64, int64, bool) (*vql.Result, error)) {
		b.ReportAllocs()
		samples := 0
		for i := 0; i < b.N; i++ {
			res, err := execFn(ctx, eng, p, ids, from, to, ok)
			if err != nil {
				b.Fatal(err)
			}
			samples = res.Samples
		}
		b.ReportMetric(float64(samples)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
	}
	b.Run("Scalar", func(b *testing.B) { run(b, vql.ExecuteResolvedScalar) })
	b.Run("Vectorized", func(b *testing.B) { run(b, vql.ExecuteResolved) })
}

// BenchmarkWireQuery pairs the two statement transports over the same
// warmed query core: the MySQL wire protocol (database/sql through the
// in-repo vapwire driver against a real TCP listener) and the HTTP JSON
// codec (POST /api/query). The exec cache stays warm, so each round trip
// measures parse + admission + memo hit + transport encode/decode — the
// per-query cost a dashboard pays — and tools/benchjson derives
// wire_overhead_ratio = Wire ns/op over HTTP ns/op for BENCH_wire.json.
func BenchmarkWireQuery(b *testing.B) {
	setupBench(b)
	const q = `SELECT bucket(daily) AS day, mean(value) AS avg_kwh, count(*)
		FROM meters WHERE zone = 'residential'
		GROUP BY bucket(daily) ORDER BY avg_kwh DESC LIMIT 14`

	b.Run("Wire", func(b *testing.B) {
		ws, err := vap.NewWireServer(vap.WireConfig{
			Core:         vap.NewQueryCore(benchData.an),
			QueryTimeout: 30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go ws.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			ws.Shutdown(ctx)
		}()
		db, err := sql.Open("vapwire", "vap@"+ln.Addr().String()+"/vap")
		if err != nil {
			b.Fatal(err)
		}
		defer db.Close()
		db.SetMaxOpenConns(1)
		run := func() int {
			rows, err := db.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			n := 0
			for rows.Next() {
				var day, avg, cnt string
				if err := rows.Scan(&day, &avg, &cnt); err != nil {
					b.Fatal(err)
				}
				n++
			}
			if err := rows.Close(); err != nil {
				b.Fatal(err)
			}
			return n
		}
		if n := run(); n != 14 {
			b.Fatalf("warmup returned %d rows, want 14", n)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})

	b.Run("HTTP", func(b *testing.B) {
		srv := httptest.NewServer(vap.NewHTTPServer(benchData.an, nil))
		defer srv.Close()
		client := srv.Client()
		run := func() {
			resp, err := client.Post(srv.URL+"/api/query", "text/plain", strings.NewReader(q))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		run() // warm the exec cache before timing
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
}

// rollupBench holds two identically loaded dense multi-month stores — one
// opened with rollups disabled, one with the default hourly+daily tiers —
// so the Raw/Tier pair below measures exactly the tier-serving delta.
var rollupBench struct {
	once sync.Once
	raw  *query.Engine
	tier *query.Engine
	plan *vql.Plan
	err  error
}

func setupRollupBench(b *testing.B) {
	b.Helper()
	rollupBench.once.Do(func() {
		const (
			meters  = 48
			days    = 240 // dense multi-month history
			perDay  = 96  // 15-minute cadence, the common utility sampling rate
			cadence = 86400 / perDay
		)
		start := int64(19000 * 86400) // day-aligned so the daily tier covers the interior
		open := func(res []int64) (*query.Engine, error) {
			st, err := store.Open(store.Options{RollupRes: res})
			if err != nil {
				return nil, err
			}
			for id := int64(1); id <= meters; id++ {
				if err := st.PutMeter(store.Meter{
					ID:       id,
					Location: vap.Point{Lon: 12.5 + float64(id)*0.001, Lat: 55.7},
					Zone:     store.ZoneResidential,
				}); err != nil {
					return nil, err
				}
				batch := make([]store.Sample, days*perDay)
				for i := range batch {
					batch[i] = store.Sample{TS: start + int64(i)*cadence, Value: float64((int(id)+i)%37) * 0.25}
				}
				if _, err := st.AppendBatch(id, batch); err != nil {
					return nil, err
				}
			}
			return query.NewEngine(st), nil
		}
		var err error
		if rollupBench.raw, err = open([]int64{}); err != nil {
			rollupBench.err = err
			return
		}
		if rollupBench.tier, err = open(nil); err != nil {
			rollupBench.err = err
			return
		}
		q, err := vql.Parse(`SELECT bucket(daily) AS day, sum(value), mean(value), count(*)
			FROM meters GROUP BY bucket(daily) ORDER BY day`)
		if err != nil {
			rollupBench.err = err
			return
		}
		rollupBench.plan, rollupBench.err = vql.Compile(q)
	})
	if rollupBench.err != nil {
		b.Fatal(rollupBench.err)
	}
}

// BenchmarkVQLRollup pairs a full raw decode against the rollup-tier path
// for the same daily GROUP BY over the same dense multi-month data, through
// the real executor (memoization bypassed). The exact-width serving rule
// makes the two results bit-identical — asserted before timing — so the
// ns/op ratio is the tier speedup benchjson records as
// derived.rollup_speedup in BENCH_rollup.json (the ≥10x acceptance floor).
func BenchmarkVQLRollup(b *testing.B) {
	setupRollupBench(b)
	ctx := context.Background()
	runOn := func(eng *query.Engine) (*vql.Result, error) {
		ids, err := vql.ResolveScanMeters(eng, rollupBench.plan)
		if err != nil {
			return nil, err
		}
		from, to, ok := rollupBench.plan.ResolveWindow(eng.Store())
		return vql.ExecuteResolved(ctx, eng, rollupBench.plan, ids, from, to, ok)
	}
	rawRes, err := runOn(rollupBench.raw)
	if err != nil {
		b.Fatal(err)
	}
	tierRes, err := runOn(rollupBench.tier)
	if err != nil {
		b.Fatal(err)
	}
	if !reflect.DeepEqual(rawRes.Rows, tierRes.Rows) {
		b.Fatal("rollup-served rows differ from raw-scan rows")
	}
	if !strings.Contains(tierRes.Plan, "rollup serves interior") {
		b.Fatalf("tier store planned a raw scan:\n%s", tierRes.Plan)
	}
	bench := func(eng *query.Engine) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := runOn(eng); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("Raw", bench(rollupBench.raw))
	b.Run("Tier", bench(rollupBench.tier))
}

// BenchmarkKMeans is E5 (S1 step 4).
func BenchmarkKMeans(b *testing.B) {
	setupBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(benchData.rows, cluster.KMeansConfig{
			K: 5, Seed: 1, Restarts: 5, NormalizeZ: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShiftGranularity is E6 (S2 step 1): full seven-granularity sweep.
func BenchmarkShiftGranularity(b *testing.B) {
	setupBench(b)
	noon := benchNoon()
	for i := 0; i < b.N; i++ {
		benchData.an.Exec().Invalidate() // measure compute, not cache hits
		if _, _, err := benchData.an.GranularitySweep(core.ShiftConfig{
			T1: noon, T2: noon + 8*3600,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntensityBand is E7 (S2 step 2).
func BenchmarkIntensityBand(b *testing.B) {
	setupBench(b)
	for i := 0; i < b.N; i++ {
		if _, err := benchData.an.Engine().IntensityBand(query.Selection{}, 0.6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamIngest is E8 (S2 step 3): one data-day replay through the
// incremental tracker per iteration.
func BenchmarkStreamIngest(b *testing.B) {
	setupBench(b)
	box := benchData.st.Catalog().Bounds().Buffer(0.002)
	feeds := make([]stream.Feed, len(benchData.ds.Customers))
	for i, c := range benchData.ds.Customers {
		feeds[i] = stream.Feed{MeterID: c.Meter.ID, Loc: c.Meter.Location, Samples: benchData.ds.Readings[i]}
	}
	from := benchData.ds.Start.Unix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracker, err := stream.NewTracker(box, 64, 64, 0.004, len(feeds))
		if err != nil {
			b.Fatal(err)
		}
		rp := &stream.Replayer{Tracker: tracker, Step: 3600}
		if _, err := rp.Run(context.Background(), feeds, from, from+86400); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(feeds)*24), "readings/op")
}

// BenchmarkAPI* are E10 (§2.2 REST latency).
func benchmarkEndpoint(b *testing.B, path string) {
	setupBench(b)
	srv := httptest.NewServer(vap.NewHTTPServer(benchData.an, nil))
	defer srv.Close()
	client := srv.Client()
	// Warm the reduction cache so the bench measures steady state.
	warm, err := client.Get(srv.URL + path)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(srv.URL + path)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d for %s", resp.StatusCode, path)
		}
	}
}

func BenchmarkAPICustomers(b *testing.B) { benchmarkEndpoint(b, "/api/customers") }
func BenchmarkAPISeries(b *testing.B)    { benchmarkEndpoint(b, "/api/series?id=1&granularity=daily") }
func BenchmarkAPIReduce(b *testing.B)    { benchmarkEndpoint(b, "/api/reduce?method=mds") }
func BenchmarkAPIFlow(b *testing.B) {
	setupBench(b)
	noon := benchNoon()
	benchmarkEndpoint(b, fmt.Sprintf("/api/flow?t1=%d&t2=%d&granularity=4hourly", noon, noon+8*3600))
}

// Storage-engine benches (the PostGIS-replacement substrate).
func BenchmarkStoreAppend(b *testing.B) {
	st, err := store.Open(store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.PutMeter(store.Meter{ID: 1, Location: vap.Point{Lon: 12.5, Lat: 55.7}, Zone: store.ZoneResidential}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(1, store.Sample{TS: int64(i), Value: float64(i % 24)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDurableAppend measures durable ingest throughput through the
// WAL's group-commit pipeline: G goroutines append to disjoint meters in a
// directory-backed store. With sync on, every append waits until its batch
// is written and fsynced — so goroutines=1 is the per-append-fsync
// baseline (one commit per append, nothing to batch with), while
// goroutines=16 shows concurrent appenders sharing commits: durable
// throughput scales with concurrency instead of fsync count (the
// acceptance bar is >= 5x the baseline). The sync=false rows measure the
// buffered path where commits happen in the background every
// CommitInterval.
func BenchmarkDurableAppend(b *testing.B) {
	for _, syncEvery := range []bool{false, true} {
		for _, g := range []int{1, 16} {
			b.Run(fmt.Sprintf("sync=%t/goroutines=%d", syncEvery, g), func(b *testing.B) {
				st, err := store.Open(store.Options{Dir: b.TempDir(), SyncEveryAppend: syncEvery})
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				for id := int64(1); id <= int64(g); id++ {
					m := store.Meter{ID: id, Location: vap.Point{Lon: 12.5 + float64(id)*0.001, Lat: 55.7}, Zone: store.ZoneResidential}
					if err := st.PutMeter(m); err != nil {
						b.Fatal(err)
					}
				}
				per := b.N/g + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				for id := int64(1); id <= int64(g); id++ {
					wg.Add(1)
					go func(id int64) {
						defer wg.Done()
						for i := 1; i <= per; i++ {
							if err := st.Append(id, store.Sample{TS: int64(i), Value: float64(i % 24)}); err != nil {
								b.Error(err)
								return
							}
						}
					}(id)
				}
				wg.Wait()
			})
		}
	}
}

func BenchmarkStoreRangeScan(b *testing.B) {
	setupBench(b)
	from := benchData.ds.Start.Unix()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchData.st.Range(1, from, from+30*86400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpatialQuery(b *testing.B) {
	setupBench(b)
	box := benchData.st.Catalog().Bounds()
	c := box.Center()
	q := vap.BBox{
		Min: vap.Point{Lon: c.Lon - 0.01, Lat: c.Lat - 0.01},
		Max: vap.Point{Lon: c.Lon + 0.01, Lat: c.Lat + 0.01},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = benchData.st.Within(q)
	}
}

func BenchmarkMeterMatrix(b *testing.B) {
	setupBench(b)
	for i := 0; i < b.N; i++ {
		if _, _, _, err := benchData.an.Engine().MeterMatrix(query.Selection{}, query.GranDaily, query.AggMean); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentAppendQuery is the sharded-store contention probe.
// Each iteration runs one fixed mixed workload: four writers append a
// deterministic burst across disjoint meter ranges while four readers
// issue the same number of short window scans. Every operation is
// microsecond-scale (the pushdown iterator decodes outside the lock, and
// the scan window is pinned to the preloaded region so its cost stays
// constant as appends accumulate), so the measurement is dominated by the
// store's locking. With one shard — the old global-RWMutex layout — the
// whole workload serializes behind a single mutex; the Shards16 variant
// should pull ahead on any multi-core runner.
func BenchmarkConcurrentAppendQuery(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("Shards%d", shards), func(b *testing.B) {
			st, err := store.Open(store.Options{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			const (
				meters  = 64
				preload = 60
				writers = 4
				readers = 4
				burst   = 1000 // ops per goroutine per iteration
			)
			for id := int64(1); id <= meters; id++ {
				if err := st.PutMeter(store.Meter{
					ID:       id,
					Location: vap.Point{Lon: 12.5 + float64(id)*0.001, Lat: 55.7},
					Zone:     store.ZoneResidential,
				}); err != nil {
					b.Fatal(err)
				}
				batch := make([]store.Sample, preload)
				for i := range batch {
					batch[i] = store.Sample{TS: int64(i) * 60, Value: float64(i % 24)}
				}
				if _, err := st.AppendBatch(id, batch); err != nil {
					b.Fatal(err)
				}
			}
			var next [meters]int64
			for i := range next {
				next[i] = preload * 60
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						const per = meters / writers
						for i := 0; i < burst; i++ {
							slot := w*per + i%per
							next[slot] += 60
							if err := st.Append(int64(slot)+1, store.Sample{TS: next[slot], Value: 1}); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						for i := 0; i < burst; i++ {
							id := int64((r*burst+i)%meters) + 1
							it, err := st.Iter(id, 0, preload*60)
							if err != nil {
								b.Error(err)
								return
							}
							for it.Next() {
							}
							if err := it.Err(); err != nil {
								b.Error(err)
								return
							}
						}
					}(r)
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64((writers+readers)*burst), "storeops/op")
		})
	}
}

// BenchmarkRecover measures cold-start recovery of a durable store whose
// data sits entirely in the snapshot (the WAL was retired by the snapshot
// cut): the v2 sample-at-a-time format loaded serially — the old path —
// against the v3 chunk-verbatim format loaded serially and with the
// recovery worker pool. The fixture defaults to 128 meters x 20k samples
// so the bench smoke stays fast; set VAP_RECOVER_FIXTURE=1000x100000 for
// the full acceptance fixture.
func BenchmarkRecover(b *testing.B) {
	meters, samplesPer := 128, 20_000
	if fx := os.Getenv("VAP_RECOVER_FIXTURE"); fx != "" {
		if _, err := fmt.Sscanf(fx, "%dx%d", &meters, &samplesPer); err != nil {
			b.Fatalf("bad VAP_RECOVER_FIXTURE %q: want MxN", fx)
		}
	}
	build := func(format int) string {
		dir := b.TempDir()
		st, err := store.Open(store.Options{Dir: dir, SnapshotFormat: format})
		if err != nil {
			b.Fatal(err)
		}
		smps := make([]store.Sample, samplesPer)
		for id := int64(1); id <= int64(meters); id++ {
			if err := st.PutMeter(store.Meter{ID: id, Location: vap.Point{Lon: 12.5 + float64(id)*0.0001, Lat: 55.7}, Zone: store.ZoneResidential}); err != nil {
				b.Fatal(err)
			}
			for i := range smps {
				smps[i] = store.Sample{TS: int64(i+1) * 60, Value: float64(i%96) * 0.25}
			}
			if _, err := st.AppendBatch(id, smps); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Snapshot(); err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	dirV2, dirV3 := build(2), build(3)
	total := meters * samplesPer
	for _, tc := range []struct {
		name    string
		dir     string
		workers int
	}{
		{"V2Serial", dirV2, 1},
		{"V3Serial", dirV3, 1},
		{"V3Parallel", dirV3, 0}, // 0 = GOMAXPROCS
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := store.Open(store.Options{Dir: tc.dir, RecoverWorkers: tc.workers})
				if err != nil {
					b.Fatal(err)
				}
				if got := st.Stats().Samples; got != total {
					b.Fatalf("recovered %d samples, want %d", got, total)
				}
				st.Close()
			}
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "samples/sec")
		})
	}
}

// BenchmarkGovernMixed is the ISSUE 9 acceptance benchmark: cheap
// interactive-query latency measured alone (Unloaded) and with two
// monster analytics scans continuously hammering the same governed engine
// (Loaded). Admission priority plus the analytics batch-loop pacing must
// keep the loaded cheap-query p99 within 5x its unloaded value — without
// governance the cheap reads queue behind the monsters' full-store scans
// and the tail is unbounded. Each sub-benchmark reports its latency
// distribution (p50-ms / p99-ms via ReportMetric); tools/benchjson
// derives govern_tail_ratio = Loaded p99 / Unloaded p99 for the
// BENCH_govern.json trajectory.
func BenchmarkGovernMixed(b *testing.B) {
	setupBench(b)
	gov := govern.New(govern.Config{
		MaxConcurrent:     8,
		InteractiveCutoff: 100_000, // one-meter/one-day reads stay interactive
		MaxQueueWait:      30 * time.Second,
	})
	an := core.NewAnalyzerOpts(benchData.st, core.Options{Gov: gov})
	ctx := context.Background()
	day0 := benchData.ds.Start.Unix()
	cheap := fmt.Sprintf("SELECT sum(value), count(*) FROM meters WHERE meter IN (1) AND time >= %d AND time < %d",
		day0, day0+86400)
	// Bucketless GROUP BYs never ride a rollup tier, so the monsters
	// always scan raw samples across every meter; distinct shapes defeat
	// singleflight coalescing, so two scans genuinely run concurrently.
	monsters := []string{
		"SELECT zone, sum(value), min(value), max(value) FROM meters GROUP BY zone",
		"SELECT meter, sum(value) FROM meters GROUP BY meter",
	}

	measure := func(b *testing.B) {
		lat := make([]time.Duration, 0, b.N)
		for i := 0; i < b.N; i++ {
			an.Exec().Invalidate() // measure a real scan, not the memo hit
			t0 := time.Now()
			if _, err := an.VQL(ctx, cheap); err != nil {
				b.Fatal(err)
			}
			lat = append(lat, time.Since(t0))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		q := func(p float64) float64 {
			return float64(lat[int(p*float64(len(lat)-1))].Microseconds()) / 1000
		}
		b.ReportMetric(q(0.50), "p50-ms")
		b.ReportMetric(q(0.99), "p99-ms")
	}

	b.Run("Unloaded", measure)
	b.Run("Loaded", func(b *testing.B) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for _, q := range monsters {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					// an.VQL admits internally (classified analytics from
					// the planner estimate); the cheap loop's per-iteration
					// Invalidate keeps these recomputing, not memo-hitting.
					if _, err := an.VQL(ctx, q); err != nil {
						var se *govern.ShedError
						if errors.As(err, &se) {
							time.Sleep(time.Millisecond)
							continue
						}
						b.Error(err)
						return
					}
				}
			}(q)
		}
		// Let the monsters reach their scan loops before timing.
		time.Sleep(10 * time.Millisecond)
		b.ResetTimer()
		measure(b)
		b.StopTimer()
		close(stop)
		wg.Wait()
	})
}
