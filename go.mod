module vap

go 1.24
